"""The shared analysis memo: interned tasks, subproblem cache, counters.

An :class:`AnalysisMemo` is the state every analysis consumer plugs into
(search strategies, the :mod:`repro.api` facade, the serve daemon, the
codesign loop):

* **interning** -- each distinct task *content* ``(name, period, wcet,
  bcet, bound)`` gets a small integer id and a precomputed
  :data:`~repro.memo.kernels.TaskRecord`; hp-sets become frozensets of
  ids, cheap to build and hash.  Content (not object identity) keys the
  memo, so an edited model -- one WCET changed out of twelve tasks --
  shares every untouched subproblem with its parent.
* **memo** -- ``(task_id, frozenset(hp_ids)) -> (best, worst, slack)``.
  The first evaluation of a subproblem fixes its value; all callers that
  enumerate hp-sets in task-set order (the facade and every algorithm
  except the exhaustive permutation scan) therefore observe floats
  bit-identical to the scalar seed path.
* **counters** -- each run carries its own :class:`EvaluationCounter`;
  ``count`` is the paper's logical metric (every predicate query ticks,
  memo hit or not), ``hits`` tallies memo hits, and ``recomputations =
  count - hits`` is what was actually paid.  The memo aggregates totals
  across runs for benchmarking and the daemon's ``/stats``.

Memos are deliberately cheap to create: a fresh memo per task set is the
default; passing one memo across several runs (or several task sets, in
codesign and the serve daemon) is what unlocks the sharing.

Process-lifetime use: pass ``max_entries`` to bound the subproblem memo
-- least-recently-used entries are evicted past the bound (interned task
records are tiny and are kept unbounded).  All mutating operations and
``stats()`` snapshots are serialised on an internal lock, so one memo
may be shared between the serve daemon's event loop, its dispatch
worker, and direct facade calls without lost counter updates.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.memo.kernels import TaskRecord, evaluate_candidate, make_record
from repro.rta.batch import TasksetAnalysis
from repro.rta.interface import ResponseTimes
from repro.rta.taskset import Task, TaskSet

#: Memo value: ``(best, worst, slack)`` of one (task, hp-set) subproblem.
MemoEntry = Tuple[float, float, float]


@dataclass
class EvaluationCounter:
    """The paper's constraint-evaluation metric, memo-aware.

    ``count`` ticks on every logical predicate query -- byte-compatible
    with the seed counters, so complexity tables stay comparable to the
    paper.  ``hits`` additionally counts the queries answered from the
    memo; the difference is the number of exact response-time interfaces
    actually computed.
    """

    count: int = 0
    hits: int = 0

    def tick(self) -> None:
        self.count += 1

    @property
    def recomputations(self) -> int:
        """Predicate evaluations that ran the RTA kernels (memo misses)."""
        return self.count - self.hits


def _task_key(task: Task) -> tuple:
    bound = task.stability
    return (
        task.name,
        task.period,
        task.wcet,
        task.bcet,
        None if bound is None else (bound.a, bound.b),
    )


class AnalysisMemo:
    """Shared subproblem memo + interning across analyses and task sets.

    Thread safe; optionally size-bounded (``max_entries``) with LRU
    eviction for daemon-lifetime use.  ``SearchContext`` is the
    deprecated pre-1.4 name of this class.
    """

    def __init__(self, *, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ModelError(
                f"max_entries must be a positive integer, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._ids: Dict[tuple, int] = {}
        self._records: List[TaskRecord] = []
        self._tasks: List[Task] = []
        self.memo: "OrderedDict[Tuple[int, FrozenSet[int]], MemoEntry]" = (
            OrderedDict()
        )
        self.evictions = 0
        #: Aggregate over every run opened on this memo.
        self.total = EvaluationCounter()
        #: Wall time spent inside the RTA kernels (memo misses only);
        #: two ``perf_counter`` calls per miss, negligible next to the
        #: kernel itself, so the timing is always on.
        self.kernel_seconds = 0.0

    # -- interning -----------------------------------------------------------
    def intern(self, task: Task) -> int:
        """Id of the task's content (registering it on first sight)."""
        key = _task_key(task)
        with self._lock:
            tid = self._ids.get(key)
            if tid is None:
                tid = len(self._records)
                self._ids[key] = tid
                self._records.append(
                    make_record(
                        task.period, task.wcet, task.bcet, task.stability, task.name
                    )
                )
                self._tasks.append(task)
        return tid

    def intern_all(self, tasks: Sequence[Task]) -> List[int]:
        """Ids of every task's content, registering new ones, one lock.

        Equivalent to ``[self.intern(t) for t in tasks]`` but takes the
        lock once -- the difference between O(n) and O(n^2) lock
        round-trips per task set on the hot serving path.
        """
        keys = [_task_key(task) for task in tasks]
        ids: List[int] = []
        with self._lock:
            for key, task in zip(keys, tasks):
                tid = self._ids.get(key)
                if tid is None:
                    tid = len(self._records)
                    self._ids[key] = tid
                    self._records.append(
                        make_record(
                            task.period,
                            task.wcet,
                            task.bcet,
                            task.stability,
                            task.name,
                        )
                    )
                    self._tasks.append(task)
                ids.append(tid)
        return ids

    def task(self, tid: int) -> Task:
        """The representative task of an interned id."""
        return self._tasks[tid]

    def name(self, tid: int) -> str:
        return self._records[tid][5]

    # -- runs ----------------------------------------------------------------
    def run(self) -> "MemoRun":
        """Open an analysis/strategy run with its own logical counter."""
        return MemoRun(self, EvaluationCounter())

    # -- statistics ----------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Consistent snapshot of interning, memo, and counter totals."""
        with self._lock:
            return {
                "interned_tasks": len(self._records),
                "memo_entries": len(self.memo),
                "max_entries": self.max_entries,
                "evictions": self.evictions,
                "evaluations": self.total.count,
                "cache_hits": self.total.hits,
                "recomputations": self.total.recomputations,
                "kernel_seconds": self.kernel_seconds,
            }

    # -- whole-taskset analysis ---------------------------------------------
    def taskset_analysis(
        self, taskset: TaskSet, counter: Optional[EvaluationCounter] = None
    ) -> TasksetAnalysis:
        """Memoised drop-in for :func:`repro.rta.batch.analyze_taskset`.

        Each task is evaluated against its hp-set in *task-set order*
        (exactly ``taskset.higher_priority(task)``), the scalar-contract
        enumeration, so the resulting interfaces -- and hence canonical
        report bytes -- are identical to the fresh pass while paying only
        for subproblems whose ``(task, hp-set)`` key is new.
        """
        taskset.check_distinct_priorities()
        if counter is None:
            counter = EvaluationCounter()
        tasks = list(taskset)
        ids = self.intern_all(tasks)
        priorities = [task.priority for task in tasks]
        # hp ids in task-set order -- exactly the
        # ``taskset.higher_priority(task)`` enumeration (priorities
        # are distinct), without re-interning per task.
        hp_lists = [
            [ids[j] for j, other in enumerate(priorities) if other > priority]
            for priority in priorities
        ]
        entries = self._entries(ids, hp_lists, counter)
        return self._assemble_analysis(tasks, entries)

    @staticmethod
    def _assemble_analysis(
        tasks: Sequence[Task], entries: Sequence[MemoEntry]
    ) -> TasksetAnalysis:
        """Build a :class:`TasksetAnalysis` from per-task memo entries."""
        times: Dict[str, ResponseTimes] = {}
        violating: List[str] = []
        for task, entry in zip(tasks, entries):
            interface = ResponseTimes(best=entry[0], worst=entry[1])
            times[task.name] = interface
            ok = interface.finite
            if ok and task.stability is not None:
                ok = task.stability.is_stable(
                    interface.latency, interface.jitter
                )
            if not ok:
                violating.append(task.name)
        return TasksetAnalysis(
            times=times,
            deadlines_met=all(t.finite for t in times.values()),
            stable=not violating,
            violating=tuple(violating),
        )

    def population_analysis(
        self,
        tasksets: Sequence[TaskSet],
        counter: Optional[EvaluationCounter] = None,
    ) -> List[TasksetAnalysis]:
        """Memoised drop-in for :func:`repro.rta.popbatch.analyze_population`.

        Semantically identical to calling :meth:`taskset_analysis` on
        each set in order -- same results (bit-identical floats, by the
        ``evaluate_problems`` pin), same counter totals (a subproblem
        repeated across the population is a miss on first sight and a
        hit on every repeat, exactly as sequential memoisation would
        count it) -- but every first-sight miss across the *whole
        population* rides one stacked kernel pass.  This is what keeps
        the population-kernel tier intact when a worker-lifetime memo
        is layered onto the batch analysis path.
        """
        from repro.rta.popbatch import evaluate_problems

        if counter is None:
            counter = EvaluationCounter()
        per_set: List[Tuple[List[Task], List[int], List[List[int]]]] = []
        for taskset in tasksets:
            taskset.check_distinct_priorities()
            tasks = list(taskset)
            ids = self.intern_all(tasks)
            priorities = [task.priority for task in tasks]
            hp_lists = [
                [ids[j] for j, other in enumerate(priorities) if other > priority]
                for priority in priorities
            ]
            per_set.append((tasks, ids, hp_lists))

        flat_tids = [tid for _, ids, _ in per_set for tid in ids]
        flat_hp = [hp for _, _, hp_lists in per_set for hp in hp_lists]
        keys = [
            (tid, frozenset(hp)) for tid, hp in zip(flat_tids, flat_hp)
        ]
        n = len(keys)
        bounded = self.max_entries is not None
        entries: List[Optional[MemoEntry]] = [None] * n
        hits = 0
        misses: List[int] = []
        first_at: Dict[Tuple[int, FrozenSet[int]], int] = {}
        pending: List[Tuple[int, int]] = []
        with self._lock:
            for i, key in enumerate(keys):
                stored = self.memo.get(key)
                if stored is not None:
                    hits += 1
                    if bounded:
                        self.memo.move_to_end(key)
                    entries[i] = stored
                elif key in first_at:
                    # Sequentially this would hit the entry the earlier
                    # miss had just stored; count it as a hit and copy
                    # the computed value once it exists.
                    hits += 1
                    pending.append((i, first_at[key]))
                else:
                    first_at[key] = i
                    misses.append(i)
            records = self._records
            problems = [
                (records[flat_tids[i]], [records[t] for t in flat_hp[i]])
                for i in misses
            ]
        if misses:
            kernel_start = time.perf_counter()
            try:
                computed = evaluate_problems(problems)
            except Exception:
                # A kernel error: replay the sequential enumeration so
                # the exception -- and the counter state it leaves
                # behind -- match the per-set path exactly (nothing was
                # stored or ticked yet).
                return [
                    self.taskset_analysis(taskset, counter)
                    for taskset in tasksets
                ]
            kernel_elapsed = time.perf_counter() - kernel_start
        counter.count += n
        counter.hits += hits
        with self._lock:
            self.total.count += n
            self.total.hits += hits
            if misses:
                self.kernel_seconds += kernel_elapsed
                for i, value in zip(misses, computed):
                    stored = self.memo.setdefault(keys[i], value)
                    entries[i] = stored
                    if stored is value and bounded:
                        while len(self.memo) > self.max_entries:
                            self.memo.popitem(last=False)
                            self.evictions += 1
        for i, j in pending:
            entries[i] = entries[j]
        results: List[TasksetAnalysis] = []
        offset = 0
        for tasks, _, _ in per_set:
            chunk = entries[offset : offset + len(tasks)]
            offset += len(tasks)
            results.append(self._assemble_analysis(tasks, chunk))
        return results

    # -- evaluation core -----------------------------------------------------
    def _entry(
        self,
        tid: int,
        hp_ids: Sequence[int],
        hp_key: FrozenSet[int],
        counter: EvaluationCounter,
    ) -> MemoEntry:
        """One logical predicate query, memo first.

        ``hp_ids`` gives the evaluation *order* on a miss (the caller's
        enumeration order -- what makes the floats match the seed path);
        ``hp_key`` is the content key.  The per-run ``counter`` belongs
        to the calling run (single-threaded by construction); the shared
        totals only mutate under the lock.
        """
        counter.count += 1
        memo_key = (tid, hp_key)
        bounded = self.max_entries is not None
        with self._lock:
            self.total.count += 1
            entry = self.memo.get(memo_key)
            if entry is not None:
                counter.hits += 1
                self.total.hits += 1
                if bounded:
                    self.memo.move_to_end(memo_key)
                return entry
            records = self._records
            record = records[tid]
            hp_records = [records[i] for i in hp_ids]
        # Evaluate outside the lock: the kernels are the expensive part.
        kernel_start = time.perf_counter()
        entry = evaluate_candidate(record, hp_records)
        kernel_elapsed = time.perf_counter() - kernel_start
        with self._lock:
            self.kernel_seconds += kernel_elapsed
            # Put-if-absent: the first evaluation fixes the value, so a
            # racing thread that computed concurrently adopts the stored
            # entry (all enumeration orders of interest agree anyway).
            stored = self.memo.setdefault(memo_key, entry)
            if stored is entry and bounded:
                while len(self.memo) > self.max_entries:
                    self.memo.popitem(last=False)
                    self.evictions += 1
        return stored

    def _entries(
        self,
        tids: Sequence[int],
        hp_lists: Sequence[Sequence[int]],
        counter: EvaluationCounter,
    ) -> List[MemoEntry]:
        """Batched :meth:`_entry`: memo misses evaluate as one population.

        The ``(tid, hp-set)`` pairs must be pairwise distinct (both
        callers -- a task set's per-task pass and a search level's
        sibling scoring -- guarantee it, because task ids within one
        call are distinct), so the hit/miss pattern and counter totals
        are exactly those of per-pair :meth:`_entry` calls, while the
        misses ride one :func:`repro.rta.popbatch.evaluate_problems`
        pass (pinned bit-identical to per-candidate
        :func:`~repro.memo.kernels.evaluate_candidate` calls).
        """
        from repro.rta.popbatch import evaluate_problems

        n = len(tids)
        bounded = self.max_entries is not None
        entries: List[Optional[MemoEntry]] = [None] * n
        misses: List[int] = []
        hits = 0
        with self._lock:
            for i, tid in enumerate(tids):
                memo_key = (tid, frozenset(hp_lists[i]))
                stored = self.memo.get(memo_key)
                if stored is not None:
                    hits += 1
                    if bounded:
                        self.memo.move_to_end(memo_key)
                    entries[i] = stored
                else:
                    misses.append(i)
            records = self._records
            problems = [
                (records[tids[i]], [records[t] for t in hp_lists[i]])
                for i in misses
            ]
        if misses:
            kernel_start = time.perf_counter()
            try:
                computed = evaluate_problems(problems)
            except Exception:
                # A kernel error (non-convergent fixed point): replay the
                # scalar enumeration so the exception -- and the counter
                # state it leaves behind -- match the serial path exactly
                # (nothing was stored or ticked yet).
                return [
                    self._entry(tid, hp_lists[i], frozenset(hp_lists[i]), counter)
                    for i, tid in enumerate(tids)
                ]
            kernel_elapsed = time.perf_counter() - kernel_start
        counter.count += n
        counter.hits += hits
        with self._lock:
            self.total.count += n
            self.total.hits += hits
            if misses:
                self.kernel_seconds += kernel_elapsed
                for i, value in zip(misses, computed):
                    # Put-if-absent, like _entry: a racing thread's
                    # stored entry wins (both are bit-identical anyway).
                    stored = self.memo.setdefault(
                        (tids[i], frozenset(hp_lists[i])), value
                    )
                    entries[i] = stored
                    if stored is value and bounded:
                        while len(self.memo) > self.max_entries:
                            self.memo.popitem(last=False)
                            self.evictions += 1
        return entries  # type: ignore[return-value]


@dataclass
class MemoRun:
    """One analysis/strategy run on a memo: own counter, shared memo.

    The attribute is named ``context`` for compatibility with the search
    engine's pre-1.4 vocabulary; ``memo`` aliases it.
    """

    context: AnalysisMemo
    counter: EvaluationCounter = field(default_factory=EvaluationCounter)

    @property
    def memo(self) -> AnalysisMemo:
        return self.context

    def slack_ids(self, tid: int, hp_ids: Sequence[int]) -> float:
        """Stability slack of one candidate against an explicit hp id list."""
        return self.context._entry(
            tid, hp_ids, frozenset(hp_ids), self.counter
        )[2]

    def level_slacks(self, ids: Sequence[int]) -> List[float]:
        """Batched sibling scoring: slack of every candidate of one level.

        ``ids[i]`` is scored against ``ids[:i] + ids[i+1:]``.  Memo
        misses of one level evaluate together through the population
        kernel (:meth:`AnalysisMemo._entries`), so a fresh n-task level
        costs one stacked fixed point instead of n scalar ones, with
        the scalar enumeration's exact hit/miss pattern and counters
        (level ids are distinct, so no same-level self-hits exist on
        either path).
        """
        ids = list(ids)
        entries = self.context._entries(
            ids,
            [ids[:i] + ids[i + 1 :] for i in range(len(ids))],
            self.counter,
        )
        return [entry[2] for entry in entries]

    def times_ids(
        self, tid: int, hp_ids: Sequence[int]
    ) -> Tuple[float, float]:
        """``(best, worst)`` response times of one subproblem (memoised)."""
        entry = self.context._entry(
            tid, hp_ids, frozenset(hp_ids), self.counter
        )
        return entry[0], entry[1]

    def slack(self, task: Task, higher_priority: Sequence[Task]) -> float:
        """Task-object convenience wrapper over :meth:`slack_ids`."""
        context = self.context
        return self.slack_ids(
            context.intern(task), context.intern_all(higher_priority)
        )

    def count_external(self) -> None:
        """Tick one non-memoisable candidate evaluation into this run.

        For candidate scans whose predicate is computed outside the
        kernels (e.g. the periodic-server budget search, whose response
        times come from a different supply model): the evaluation enters
        this run's logical counter so complexity accounting stays
        uniform, but nothing is memoised.
        """
        self.counter.count += 1
        with self.context._lock:
            self.context.total.count += 1
