"""repro.memo -- the shared analysis-memo layer.

Every analysis in this library bottoms out in the same subproblem: the
exact response-time interface of one task against one higher-priority
set, followed by the linear stability bound (the predicate of paper
Algorithm 1, line 12).  The search engine of :mod:`repro.search` proved
(PR 4) that content-interning tasks and memoising that subproblem by
``(task, frozenset(hp-set))`` reproduces the seed analyses bit-for-bit
at near-zero recomputation.  This package promotes that machinery from a
search-private helper into a first-class layer the whole stack consumes:

* :class:`~repro.memo.core.AnalysisMemo` -- content-interned tasks, the
  ``(task_id, frozenset(hp_ids)) -> (best, worst, slack)`` memo, and
  aggregate :class:`~repro.memo.core.EvaluationCounter` totals.  Thread
  safe (the serve daemon's dispatch thread and event loop share one) and
  process-lifetime-capable: ``max_entries`` bounds the memo with LRU
  eviction, ``stats()`` snapshots the counters consistently.
* :mod:`~repro.memo.kernels` -- the float-exact evaluation kernels
  (moved here from ``repro.search.kernels``, which re-exports them):
  bit-identical to the scalar analyses of :mod:`repro.rta` for the same
  hp enumeration order.
* :class:`~repro.memo.core.MemoRun` -- one strategy/analysis run on a
  memo: its own logical counter, the shared subproblem cache.

Consumers:

* ``repro.search`` strategies run on a memo (``SearchContext`` is now a
  deprecated alias);
* the :mod:`repro.api` facade routes ``analyze()``/``assign()`` per-task
  evaluations through an optional ``memo=`` argument;
* the :mod:`repro.serve` daemon keeps one daemon-lifetime memo so a
  *near*-identical request (one WCET edit of a known model) recomputes
  only the tasks whose ``(task, hp-set)`` key is actually new;
* the codesign combination loop and the server-design budget scan pool
  their evaluation accounting through the same object.

Equivalence contract: an entry is evaluated with the caller's hp
*enumeration order* -- every consumer that enumerates in task-set order
(the facade, all strategies except the exhaustive permutation scan)
observes floats bit-identical to the scalar seed path, so memoised and
fresh analyses serialise to byte-identical canonical JSON.
"""

from repro.memo.core import (
    AnalysisMemo,
    EvaluationCounter,
    MemoEntry,
    MemoRun,
)
from repro.memo.kernels import TaskRecord, evaluate_candidate, make_record

__all__ = [
    "AnalysisMemo",
    "EvaluationCounter",
    "MemoEntry",
    "MemoRun",
    "TaskRecord",
    "evaluate_candidate",
    "make_record",
]
