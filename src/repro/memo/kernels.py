"""Float-exact evaluation kernels of the shared analysis memo.

The subproblem every analysis and assignment algorithm evaluates is the
exact response-time interface of one candidate against one
higher-priority set (:func:`repro.rta.interface.latency_jitter`)
followed by the linear stability bound.  The seed algorithms called the
per-task analyses once per candidate, rebuilding hp tuples and
re-deriving utilisations every time; the kernels here score candidates
over interned per-task records ``(period, wcet, bcet, bcet/period,
bound)`` that the :class:`~repro.memo.core.AnalysisMemo` precomputes
once.

Equivalence contract (the foundation of the golden tests in
``tests/search/`` and the byte-equivalence tests in ``tests/memo/``):
for the same candidate and the same hp *order*, these kernels return
bit-identical floats to the scalar analyses of :mod:`repro.rta.wcrt` /
:mod:`repro.rta.bcrt` -- same accumulation order, same guarded
ceilings, same convergence tests.  This is deliberately *stricter* than
:mod:`repro.rta.batch` (whose priority-ordered pass is documented to
differ in the last ulp): assignment searches sort candidates by slack,
and an ulp can flip an argmax.

Moved here from ``repro.search.kernels`` (which re-exports these names
unchanged) when the memo became a shared layer.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.errors import ScheduleError
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.wcrt import _CEIL_RTOL

#: Interned per-task record: ``(period, wcet, bcet, bcet/period, bound,
#: name)``.  The division is precomputed once per task; summing the
#: precomputed quotients in hp order reproduces the scalar generator sums
#: exactly (same operands, same order).
TaskRecord = Tuple[float, float, float, float, Optional[LinearStabilityBound], str]

_PERIOD, _WCET, _BCET, _BCET_UTIL, _BOUND, _NAME = range(6)

_MAX_ITERATIONS = 10_000

_INF = float("inf")
_NEG_INF = float("-inf")


def make_record(
    period: float,
    wcet: float,
    bcet: float,
    bound: Optional[LinearStabilityBound],
    name: str,
) -> TaskRecord:
    return (period, wcet, bcet, bcet / period, bound, name)


def _wcrt_exact(
    wcet: float, period: float, hp: Sequence[TaskRecord], name: str
) -> float:
    """Replica of :func:`repro.rta.wcrt.worst_case_response_time` with
    ``limit = period`` (the implicit deadline every search predicate uses).

    The scalar analysis also derives the hp utilisation, but with a finite
    limit only consults it on the infinite-limit path -- so skipping it
    here changes no result.
    """
    # Hot loop: the branchy max/abs/int builtins of the reference
    # analysis are unrolled into arithmetic on the (non-negative)
    # quotient -- every comparison sees the same floats, so the factor
    # and convergence decisions are unchanged bit for bit.
    ceil = math.ceil
    rtol = _CEIL_RTOL
    response = wcet
    for _ in range(_MAX_ITERATIONS):
        interference = 0.0
        for record in hp:
            quotient = response / record[0]
            nearest = round(quotient)
            diff = quotient - nearest
            if diff < 0.0:
                diff = -diff
            if diff <= rtol * (quotient if quotient > 1.0 else 1.0):
                factor = nearest
            else:
                factor = ceil(quotient)
            interference += factor * record[1]
        updated = wcet + interference
        if updated > period:
            return _INF
        diff = updated - response
        if diff < 0.0:
            diff = -diff
        if diff <= 1e-12 * (updated if updated > 1.0 else 1.0):
            return updated
        response = updated
    raise ScheduleError(
        f"WCRT iteration did not converge within {_MAX_ITERATIONS} steps "
        f"for task {name!r}"
    )


def _bcrt_exact(bcet: float, hp: Sequence[TaskRecord], name: str) -> float:
    """Replica of :func:`repro.rta.bcrt.best_case_response_time`."""
    bcet_util = 0.0
    for record in hp:
        bcet_util += record[3]
    if bcet_util + 1e-12 >= 1.0:
        return _INF
    # Same builtin-free unrolling as :func:`_wcrt_exact`; skipping the
    # ``factor <= 1`` terms drops exact ``+ 0.0`` additions, which are
    # the identity on the non-negative interference accumulator.
    ceil = math.ceil
    rtol = _CEIL_RTOL
    response = bcet / (1.0 - bcet_util) + 1e-9
    for _ in range(_MAX_ITERATIONS):
        interference = 0.0
        for record in hp:
            quotient = response / record[0]
            nearest = round(quotient)
            diff = quotient - nearest
            if diff < 0.0:
                diff = -diff
            if diff <= rtol * (quotient if quotient > 1.0 else 1.0):
                factor = nearest
            else:
                factor = ceil(quotient)
            if factor > 1:
                interference += (factor - 1) * record[2]
        updated = bcet + interference
        if updated > response + 1e-12 * (response if response > 1.0 else 1.0):
            raise ScheduleError(
                f"BCRT iteration increased for task {name!r}; "
                "seed was not an upper bound (numerical inconsistency)"
            )
        diff = updated - response
        if diff < 0.0:
            diff = -diff
        if diff <= 1e-12 * (updated if updated > 1.0 else 1.0):
            return updated
        response = updated
    raise ScheduleError(
        f"BCRT iteration did not converge within {_MAX_ITERATIONS} steps "
        f"for task {name!r}"
    )


def evaluate_candidate(
    record: TaskRecord, hp: Sequence[TaskRecord]
) -> Tuple[float, float, float]:
    """``(best, worst, slack)`` of one candidate at the lowest priority.

    The slack convention matches
    :func:`repro.assignment.predicate.stability_slack`: ``-inf`` on a
    deadline miss, the (scaled) deadline slack for tasks without a
    stability bound, the signed bound margin otherwise.
    """
    worst = _wcrt_exact(record[1], record[0], hp, record[5])
    best = _bcrt_exact(record[2], hp, record[5])
    if worst == _INF:
        return best, worst, _NEG_INF
    bound = record[4]
    if bound is None:
        return best, worst, record[0] - worst
    return best, worst, bound.slack(best, worst - best)
