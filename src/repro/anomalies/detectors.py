"""Detectors for the three anomaly families (paper sec. I and [20]).

All detectors compare *exact* response-time interfaces before and after a
change that intuition says can only help:

* **priority raise** -- swapping a task up one priority level removes one
  interferer from its hp-set; monotonicity suggests (L, J) can only
  improve, yet the jitter ``J = R^w - R^b`` can grow because ``R^b`` may
  shrink faster than ``R^w`` (best case uses BCETs, worst case WCETs).
* **WCET decrease of an interferer** -- less interference in the worst
  case, unchanged best case: the task's jitter can only... shrink?  No:
  ``R^w`` can drop discontinuously past a period boundary while ``R^b``
  stays, which is fine -- but a *joint* WCET+BCET decrease can raise
  ``J``.
* **period increase of an interferer** -- fewer preemptions, yet the
  response-time interface of a lower-priority task can degrade, the case
  [20] demonstrates.

A detected anomaly is reported as an :class:`AnomalyEvent` carrying the
before/after interfaces and slacks so experiments can rank severity (a
slack-sign flip is a *destabilising* anomaly).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.service import task_verdict
from repro.errors import ModelError
from repro.rta.interface import ResponseTimes
from repro.rta.taskset import Task, TaskSet


@dataclass(frozen=True)
class AnomalyEvent:
    """One detected monotonicity violation."""

    kind: str
    task_name: str
    change: str
    before: ResponseTimes
    after: ResponseTimes
    slack_before: Optional[float]
    slack_after: Optional[float]

    @property
    def jitter_increase(self) -> float:
        return self.after.jitter - self.before.jitter

    @property
    def destabilising(self) -> bool:
        """The change flipped the task from stable to unstable."""
        return (
            self.slack_before is not None
            and self.slack_after is not None
            and self.slack_before >= 0.0 > self.slack_after
        )


def _interface_and_slack(
    task: Task, hp: Sequence[Task]
) -> Tuple[ResponseTimes, Optional[float]]:
    """One task's interface + slack, through the analysis façade.

    The verdict's ``slack`` convention (``None`` without a bound,
    ``-inf`` for bounded deadline-missers) is exactly what
    :func:`_is_worse` compares.
    """
    verdict = task_verdict(task, hp)
    return verdict.times, verdict.slack


def jitter_after_priority_raise(
    taskset: TaskSet, task_name: str
) -> Tuple[ResponseTimes, ResponseTimes]:
    """Interfaces of ``task_name`` before/after a one-level priority raise.

    Raising swaps the task with the task exactly one level above it.
    Raises :class:`ModelError` if the task already has the highest
    priority.
    """
    taskset.check_distinct_priorities()
    task = taskset.by_name(task_name)
    above = _task_one_level_above(taskset, task)
    before = task_verdict(task, taskset.higher_priority(task)).times
    swapped = _swap_priorities(taskset, task.name, above.name)
    task_after = swapped.by_name(task_name)
    after = task_verdict(
        task_after, swapped.higher_priority(task_after)
    ).times
    return before, after


def priority_raise_anomalies(taskset: TaskSet) -> List[AnomalyEvent]:
    """All one-level priority raises that worsen the raised task.

    "Worsen" means the stability slack decreases (or, for tasks without a
    bound, the jitter increases) even though the raise removes an
    interferer -- the headline anomaly of the paper.
    """
    taskset.check_distinct_priorities()
    events: List[AnomalyEvent] = []
    ordered = taskset.sorted_by_priority(descending=False)  # lowest first
    for task in ordered[:-1]:
        above = _task_one_level_above(taskset, task)
        before, slack_before = _interface_and_slack(
            task, taskset.higher_priority(task)
        )
        swapped = _swap_priorities(taskset, task.name, above.name)
        task_after = swapped.by_name(task.name)
        after, slack_after = _interface_and_slack(
            task_after, swapped.higher_priority(task_after)
        )
        if _is_worse(before, after, slack_before, slack_after):
            events.append(
                AnomalyEvent(
                    kind="priority_raise",
                    task_name=task.name,
                    change=f"swap above {above.name}",
                    before=before,
                    after=after,
                    slack_before=slack_before,
                    slack_after=slack_after,
                )
            )
    return events


def wcet_decrease_anomalies(
    taskset: TaskSet,
    *,
    shrink: float = 0.9,
) -> List[AnomalyEvent]:
    """Anomalies where shrinking an interferer's execution times hurts.

    For every pair (interferer ``tau_j``, observed ``tau_i`` with lower
    priority), both execution-time bounds of ``tau_j`` are scaled by
    ``shrink`` and the observed task's interface re-evaluated.  Faster
    higher-priority code should never destabilise anyone -- when it does,
    that is the anomaly (cf. Racu & Ernst, the paper's reference [18]).
    """
    if not (0 < shrink < 1):
        raise ModelError(f"shrink factor must be in (0,1), got {shrink}")
    taskset.check_distinct_priorities()
    events: List[AnomalyEvent] = []
    for interferer in taskset:
        changed = TaskSet(
            [
                replace(t, wcet=t.wcet * shrink, bcet=t.bcet * shrink)
                if t.name == interferer.name
                else t.copy()
                for t in taskset
            ]
        )
        for task in taskset:
            if task.priority >= interferer.priority:
                continue
            before, slack_before = _interface_and_slack(
                task, taskset.higher_priority(task)
            )
            task_after = changed.by_name(task.name)
            after, slack_after = _interface_and_slack(
                task_after, changed.higher_priority(task_after)
            )
            if _is_worse(before, after, slack_before, slack_after):
                events.append(
                    AnomalyEvent(
                        kind="wcet_decrease",
                        task_name=task.name,
                        change=f"{interferer.name} executed {shrink:g}x faster",
                        before=before,
                        after=after,
                        slack_before=slack_before,
                        slack_after=slack_after,
                    )
                )
    return events


def period_increase_anomalies(
    taskset: TaskSet,
    *,
    stretch: float = 1.1,
) -> List[AnomalyEvent]:
    """Anomalies where slowing an interferer's rate hurts a lower task.

    Scales an interferer's period by ``stretch`` (execution times
    unchanged, so its utilisation *drops*) and re-evaluates every
    lower-priority task -- the second anomaly [20] demonstrates.
    """
    if stretch <= 1:
        raise ModelError(f"stretch factor must exceed 1, got {stretch}")
    taskset.check_distinct_priorities()
    events: List[AnomalyEvent] = []
    for interferer in taskset:
        if interferer.wcet > interferer.period * stretch:
            continue
        changed = TaskSet(
            [
                replace(t, period=t.period * stretch)
                if t.name == interferer.name
                else t.copy()
                for t in taskset
            ]
        )
        for task in taskset:
            if task.priority >= interferer.priority:
                continue
            before, slack_before = _interface_and_slack(
                task, taskset.higher_priority(task)
            )
            task_after = changed.by_name(task.name)
            after, slack_after = _interface_and_slack(
                task_after, changed.higher_priority(task_after)
            )
            if _is_worse(before, after, slack_before, slack_after):
                events.append(
                    AnomalyEvent(
                        kind="period_increase",
                        task_name=task.name,
                        change=f"{interferer.name} period x{stretch:g}",
                        before=before,
                        after=after,
                        slack_before=slack_before,
                        slack_after=slack_after,
                    )
                )
    return events


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _task_one_level_above(taskset: TaskSet, task: Task) -> Task:
    higher = [
        t
        for t in taskset
        if t.priority is not None and t.priority > task.priority
    ]
    if not higher:
        raise ModelError(f"task {task.name!r} already has the highest priority")
    return min(higher, key=lambda t: t.priority)


def _swap_priorities(taskset: TaskSet, name_a: str, name_b: str) -> TaskSet:
    pa = taskset.by_name(name_a).priority
    pb = taskset.by_name(name_b).priority
    priorities = {
        t.name: (pb if t.name == name_a else pa if t.name == name_b else t.priority)
        for t in taskset
    }
    return taskset.with_priorities(priorities)


def _is_worse(
    before: ResponseTimes,
    after: ResponseTimes,
    slack_before: Optional[float],
    slack_after: Optional[float],
) -> bool:
    """Did the 'improvement' actually degrade the task?

    With a stability bound: slack strictly decreased.  Without: jitter
    strictly increased.  Strictness uses a small tolerance so that exact
    float ties are not reported.
    """
    tol = 1e-12
    if slack_before is not None and slack_after is not None:
        return slack_after < slack_before - tol
    return after.jitter > before.jitter + tol
