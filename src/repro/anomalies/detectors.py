"""Detectors for the three anomaly families (paper sec. I and [20]).

All detectors compare *exact* response-time interfaces before and after a
change that intuition says can only help:

* **priority raise** -- swapping a task up one priority level removes one
  interferer from its hp-set; monotonicity suggests (L, J) can only
  improve, yet the jitter ``J = R^w - R^b`` can grow because ``R^b`` may
  shrink faster than ``R^w`` (best case uses BCETs, worst case WCETs).
* **WCET decrease of an interferer** -- less interference in the worst
  case, unchanged best case: the task's jitter can only... shrink?  No:
  ``R^w`` can drop discontinuously past a period boundary while ``R^b``
  stays, which is fine -- but a *joint* WCET+BCET decrease can raise
  ``J``.
* **period increase of an interferer** -- fewer preemptions, yet the
  response-time interface of a lower-priority task can degrade, the case
  [20] demonstrates.

A detected anomaly is reported as an :class:`AnomalyEvent` carrying the
before/after interfaces and slacks so experiments can rank severity (a
slack-sign flip is a *destabilising* anomaly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.api.service import task_verdict
from repro.errors import ModelError
from repro.memo.kernels import _NAME as _R_NAME
from repro.memo.kernels import make_record
from repro.rta.interface import ResponseTimes
from repro.rta.popbatch import Problem, evaluate_problems
from repro.rta.taskset import Task, TaskSet


@dataclass(frozen=True)
class AnomalyEvent:
    """One detected monotonicity violation."""

    kind: str
    task_name: str
    change: str
    before: ResponseTimes
    after: ResponseTimes
    slack_before: Optional[float]
    slack_after: Optional[float]

    @property
    def jitter_increase(self) -> float:
        return self.after.jitter - self.before.jitter

    @property
    def destabilising(self) -> bool:
        """The change flipped the task from stable to unstable."""
        return (
            self.slack_before is not None
            and self.slack_after is not None
            and self.slack_before >= 0.0 > self.slack_after
        )


def _interface_and_slack(
    task: Task, hp: Sequence[Task]
) -> Tuple[ResponseTimes, Optional[float]]:
    """One task's interface + slack, through the analysis façade.

    The verdict's ``slack`` convention (``None`` without a bound,
    ``-inf`` for bounded deadline-missers) is exactly what
    :func:`_is_worse` compares.
    """
    verdict = task_verdict(task, hp)
    return verdict.times, verdict.slack


#: One planned before/after comparison: the observed task plus the
#: detector's change label.  The two fixed-point problems of the pair
#: live in a companion problem list, flattened as ``(before_0, after_0,
#: before_1, ...)`` -- the exact order the serial detectors evaluate
#: them in, so a :class:`~repro.errors.ScheduleError` raises on the
#: same problem.
_PairInfo = Tuple[Task, str]


def _record(task: Task):
    return make_record(
        task.period, task.wcet, task.bcet, task.stability, task.name
    )


def _before_hp_map(tasks: Sequence[Task], records: dict) -> dict:
    """One shared unperturbed hp record list per observed task.

    Every family's "before" problem reuses the task's *same list
    object*, so the population kernel's identity-keyed dedup collapses
    the repeats (per interferer and across families) without comparing
    contents.  Enumeration order is task-set order, exactly what each
    builder's inline filter produced.
    """
    return {
        task.name: [
            records[t.name] for t in tasks if t.priority > task.priority
        ]
        for task in tasks
    }


def _priority_raise_pairs(
    taskset: TaskSet,
    records: Optional[dict] = None,
    before_hp: Optional[dict] = None,
) -> Tuple[List[Problem], List[_PairInfo]]:
    """Before/after problems of every one-level priority raise.

    Record-level construction, no swapped :class:`TaskSet` per raise:
    after swapping with the task exactly one level above, the raised
    task's hp-set is its original hp-set minus that task (no priority
    lies strictly between the two, by construction), enumerated in
    unchanged task-set order -- exactly what ``swapped.higher_priority``
    yields.  The raised task's own record is unchanged (priority is not
    part of a :class:`~repro.memo.kernels.TaskRecord`).
    """
    taskset.check_distinct_priorities()
    tasks = list(taskset)
    if records is None:
        records = {t.name: _record(t) for t in tasks}
    if before_hp is None:
        before_hp = _before_hp_map(tasks, records)
    problems: List[Problem] = []
    info: List[_PairInfo] = []
    for task in taskset.sorted_by_priority(descending=False)[:-1]:
        above = _task_one_level_above(taskset, task)
        hp_before = before_hp[task.name]
        problems.append((records[task.name], hp_before))
        problems.append(
            (
                records[task.name],
                [r for r in hp_before if r[_R_NAME] != above.name],
            )
        )
        info.append((task, f"swap above {above.name}"))
    return problems, info


def _wcet_decrease_pairs(
    taskset: TaskSet,
    shrink: float,
    records: Optional[dict] = None,
    before_hp: Optional[dict] = None,
) -> Tuple[List[Problem], List[_PairInfo]]:
    """Before/after problems of every (interferer sped up, observed) pair.

    Priorities are untouched, so the changed task set's hp enumeration
    is the original one with the interferer's record rescaled; the
    scaled record repeats the replace-then-record arithmetic
    (``wcet * shrink``, ``bcet * shrink``) float for float.
    """
    if not (0 < shrink < 1):
        raise ModelError(f"shrink factor must be in (0,1), got {shrink}")
    taskset.check_distinct_priorities()
    tasks = list(taskset)
    if records is None:
        records = {t.name: _record(t) for t in tasks}
    if before_hp is None:
        before_hp = _before_hp_map(tasks, records)
    problems: List[Problem] = []
    info: List[_PairInfo] = []
    for interferer in tasks:
        scaled = make_record(
            interferer.period,
            interferer.wcet * shrink,
            interferer.bcet * shrink,
            interferer.stability,
            interferer.name,
        )
        for task in tasks:
            if task.priority >= interferer.priority:
                continue
            hp = before_hp[task.name]
            problems.append((records[task.name], hp))
            problems.append(
                (
                    records[task.name],
                    [
                        scaled if r[_R_NAME] == interferer.name else r
                        for r in hp
                    ],
                )
            )
            info.append(
                (task, f"{interferer.name} executed {shrink:g}x faster")
            )
    return problems, info


def _period_increase_pairs(
    taskset: TaskSet,
    stretch: float,
    records: Optional[dict] = None,
    before_hp: Optional[dict] = None,
) -> Tuple[List[Problem], List[_PairInfo]]:
    """Before/after problems of every (interferer slowed down, observed)
    pair; same record-level construction as :func:`_wcet_decrease_pairs`."""
    if stretch <= 1:
        raise ModelError(f"stretch factor must exceed 1, got {stretch}")
    taskset.check_distinct_priorities()
    tasks = list(taskset)
    if records is None:
        records = {t.name: _record(t) for t in tasks}
    if before_hp is None:
        before_hp = _before_hp_map(tasks, records)
    problems: List[Problem] = []
    info: List[_PairInfo] = []
    for interferer in tasks:
        if interferer.wcet > interferer.period * stretch:
            continue
        stretched = make_record(
            interferer.period * stretch,
            interferer.wcet,
            interferer.bcet,
            interferer.stability,
            interferer.name,
        )
        for task in tasks:
            if task.priority >= interferer.priority:
                continue
            hp = before_hp[task.name]
            problems.append((records[task.name], hp))
            problems.append(
                (
                    records[task.name],
                    [
                        stretched if r[_R_NAME] == interferer.name else r
                        for r in hp
                    ],
                )
            )
            info.append((task, f"{interferer.name} period x{stretch:g}"))
    return problems, info


def _assemble_events(
    kind: str,
    info: Sequence[_PairInfo],
    entries: Sequence[Tuple[float, float, float]],
) -> List[AnomalyEvent]:
    """Anomaly events from the evaluated before/after pair entries.

    The slack is mapped to the verdict convention (``None`` without a
    bound, the signed bound margin -- ``-inf`` on a deadline miss --
    otherwise), bit-identical to per-pair :func:`_interface_and_slack`
    calls through the analysis façade.
    """
    events: List[AnomalyEvent] = []
    for index, (task, change) in enumerate(info):
        best_b, worst_b, slack_b = entries[2 * index]
        best_a, worst_a, slack_a = entries[2 * index + 1]
        # Inline :func:`_is_worse` on the raw floats (same expressions,
        # same tolerance): anomalies are rare, so the interface objects
        # are only materialised for actual events.
        if task.stability is None:
            slack_before = slack_after = None
            worse = (worst_a - best_a) > (worst_b - best_b) + 1e-12
        else:
            slack_before = float(slack_b)
            slack_after = float(slack_a)
            worse = slack_after < slack_before - 1e-12
        if worse:
            events.append(
                AnomalyEvent(
                    kind=kind,
                    task_name=task.name,
                    change=change,
                    before=ResponseTimes(best=best_b, worst=worst_b),
                    after=ResponseTimes(best=best_a, worst=worst_a),
                    slack_before=slack_before,
                    slack_after=slack_after,
                )
            )
    return events


def jitter_after_priority_raise(
    taskset: TaskSet, task_name: str
) -> Tuple[ResponseTimes, ResponseTimes]:
    """Interfaces of ``task_name`` before/after a one-level priority raise.

    Raising swaps the task with the task exactly one level above it.
    Raises :class:`ModelError` if the task already has the highest
    priority.
    """
    taskset.check_distinct_priorities()
    task = taskset.by_name(task_name)
    above = _task_one_level_above(taskset, task)
    before = task_verdict(task, taskset.higher_priority(task)).times
    swapped = _swap_priorities(taskset, task.name, above.name)
    task_after = swapped.by_name(task_name)
    after = task_verdict(
        task_after, swapped.higher_priority(task_after)
    ).times
    return before, after


def priority_raise_anomalies(taskset: TaskSet) -> List[AnomalyEvent]:
    """All one-level priority raises that worsen the raised task.

    "Worsen" means the stability slack decreases (or, for tasks without a
    bound, the jitter increases) even though the raise removes an
    interferer -- the headline anomaly of the paper.
    """
    problems, info = _priority_raise_pairs(taskset)
    return _assemble_events(
        "priority_raise", info, evaluate_problems(problems)
    )


def wcet_decrease_anomalies(
    taskset: TaskSet,
    *,
    shrink: float = 0.9,
) -> List[AnomalyEvent]:
    """Anomalies where shrinking an interferer's execution times hurts.

    For every pair (interferer ``tau_j``, observed ``tau_i`` with lower
    priority), both execution-time bounds of ``tau_j`` are scaled by
    ``shrink`` and the observed task's interface re-evaluated.  Faster
    higher-priority code should never destabilise anyone -- when it does,
    that is the anomaly (cf. Racu & Ernst, the paper's reference [18]).
    """
    problems, info = _wcet_decrease_pairs(taskset, shrink)
    return _assemble_events(
        "wcet_decrease", info, evaluate_problems(problems)
    )


def period_increase_anomalies(
    taskset: TaskSet,
    *,
    stretch: float = 1.1,
) -> List[AnomalyEvent]:
    """Anomalies where slowing an interferer's rate hurts a lower task.

    Scales an interferer's period by ``stretch`` (execution times
    unchanged, so its utilisation *drops*) and re-evaluates every
    lower-priority task -- the second anomaly [20] demonstrates.
    """
    problems, info = _period_increase_pairs(taskset, stretch)
    return _assemble_events(
        "period_increase", info, evaluate_problems(problems)
    )


def all_anomalies(
    taskset: TaskSet,
    *,
    shrink: float = 0.9,
    stretch: float = 1.1,
) -> List[AnomalyEvent]:
    """All three anomaly families in one population-kernel pass.

    Returns exactly ``priority_raise_anomalies(ts) +
    wcet_decrease_anomalies(ts, shrink=shrink) +
    period_increase_anomalies(ts, stretch=stretch)``: the families'
    problem lists are concatenated in that order, evaluated in a single
    :func:`~repro.rta.popbatch.evaluate_problems` call (one stacked
    fixed-point solve instead of three, which also lifts small task sets
    over the population-kernel crossover), and the events reassembled
    per family.  A :class:`~repro.errors.ScheduleError` therefore raises
    on the same problem as the serial three-call form.
    """
    # One shared record pool and one shared before-hp list per task: the
    # families' unperturbed "before" problems then share object
    # identities, so the population kernel's id-keyed dedup collapses
    # them *across* families too.
    tasks = list(taskset)
    records = {t.name: _record(t) for t in tasks}
    before_hp = _before_hp_map(tasks, records)
    raise_p, raise_i = _priority_raise_pairs(taskset, records, before_hp)
    wcet_p, wcet_i = _wcet_decrease_pairs(
        taskset, shrink, records, before_hp
    )
    period_p, period_i = _period_increase_pairs(
        taskset, stretch, records, before_hp
    )
    entries = evaluate_problems(raise_p + wcet_p + period_p)
    split_wcet = len(raise_p)
    split_period = split_wcet + len(wcet_p)
    return (
        _assemble_events("priority_raise", raise_i, entries[:split_wcet])
        + _assemble_events(
            "wcet_decrease", wcet_i, entries[split_wcet:split_period]
        )
        + _assemble_events("period_increase", period_i, entries[split_period:])
    )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _task_one_level_above(taskset: TaskSet, task: Task) -> Task:
    higher = [
        t
        for t in taskset
        if t.priority is not None and t.priority > task.priority
    ]
    if not higher:
        raise ModelError(f"task {task.name!r} already has the highest priority")
    return min(higher, key=lambda t: t.priority)


def _swap_priorities(taskset: TaskSet, name_a: str, name_b: str) -> TaskSet:
    pa = taskset.by_name(name_a).priority
    pb = taskset.by_name(name_b).priority
    priorities = {
        t.name: (pb if t.name == name_a else pa if t.name == name_b else t.priority)
        for t in taskset
    }
    return taskset.with_priorities(priorities)


def _is_worse(
    before: ResponseTimes,
    after: ResponseTimes,
    slack_before: Optional[float],
    slack_after: Optional[float],
) -> bool:
    """Did the 'improvement' actually degrade the task?

    With a stability bound: slack strictly decreased.  Without: jitter
    strictly increased.  Strictness uses a small tolerance so that exact
    float ties are not reported.
    """
    tol = 1e-12
    if slack_before is not None and slack_after is not None:
        return slack_after < slack_before - tol
    return after.jitter > before.jitter + tol
