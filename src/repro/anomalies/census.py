"""Monte-Carlo anomaly census: how rare are the anomalies, really?

Table I of the paper measures anomaly rarity indirectly (failures of the
monotonicity-trusting assigner).  The census measures it *directly*: over
random benchmarks with random valid priority assignments, how many
single-parameter "improvements" (priority raise, interferer WCET decrease,
interferer period increase) degrade some task's stability slack, and how
many of those actually destabilise a task.

This quantifies the paper's central claim -- "these anomalies are, in
fact, very improbable" -- at the level of individual design moves rather
than whole algorithm runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.anomalies.detectors import AnomalyEvent, all_anomalies
from repro.assignment.backtracking import assign_backtracking
from repro.benchgen.taskgen import BenchmarkConfig, generate_control_taskset


@dataclass
class AnomalyCensus:
    """Aggregated counts of one census run."""

    benchmarks: int = 0
    feasible: int = 0
    moves_checked: Dict[str, int] = field(default_factory=dict)
    anomalous_moves: Dict[str, int] = field(default_factory=dict)
    destabilising_moves: Dict[str, int] = field(default_factory=dict)
    events: List[AnomalyEvent] = field(default_factory=list)

    def record(self, kind: str, checked: int, found: List[AnomalyEvent]) -> None:
        self.moves_checked[kind] = self.moves_checked.get(kind, 0) + checked
        self.anomalous_moves[kind] = self.anomalous_moves.get(kind, 0) + len(found)
        self.destabilising_moves[kind] = self.destabilising_moves.get(kind, 0) + sum(
            1 for e in found if e.destabilising
        )
        self.events.extend(found)

    def anomaly_rate(self, kind: str) -> float:
        checked = self.moves_checked.get(kind, 0)
        return self.anomalous_moves.get(kind, 0) / checked if checked else 0.0

    def destabilising_rate(self, kind: str) -> float:
        checked = self.moves_checked.get(kind, 0)
        return self.destabilising_moves.get(kind, 0) / checked if checked else 0.0


@dataclass(frozen=True)
class BenchmarkCensus:
    """Census outcome of one benchmark: the unit of the census sweep."""

    feasible: bool
    moves_checked: Dict[str, int]
    events: List[AnomalyEvent]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def destabilising_count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind and e.destabilising)


def census_benchmark(
    n_tasks: int,
    index: int,
    *,
    seed: int = 99,
    config: Optional[BenchmarkConfig] = None,
) -> BenchmarkCensus:
    """Probe one benchmark instance for anomalous moves.

    Deterministic in ``(seed, n_tasks, index)`` alone -- the same child
    generator protocol as the benchmark suite -- so census sweeps can be
    chunked and parallelised freely without changing a single count.
    """
    rng = np.random.default_rng([seed, n_tasks, index])
    taskset = generate_control_taskset(n_tasks, rng, config=config)
    result = assign_backtracking(taskset, max_evaluations=100_000)
    if result.priorities is None:
        return BenchmarkCensus(feasible=False, moves_checked={}, events=[])
    assigned = result.apply_to(taskset)
    pairs = _interferer_pairs(len(assigned))
    checked = {
        "priority_raise": len(assigned) - 1,
        "wcet_decrease": pairs,
        "period_increase": pairs,
    }
    events = all_anomalies(assigned)
    return BenchmarkCensus(feasible=True, moves_checked=checked, events=events)


def run_anomaly_census(
    n_tasks: int,
    benchmarks: int,
    *,
    seed: int = 99,
    config: Optional[BenchmarkConfig] = None,
    keep_events: bool = False,
) -> AnomalyCensus:
    """Generate benchmarks, assign priorities, and count anomalous moves.

    Only feasible benchmarks (backtracking finds a valid assignment) are
    probed -- the anomaly question is about perturbing *working* designs.
    """
    census = AnomalyCensus()
    config = config or BenchmarkConfig()
    for index in range(benchmarks):
        single = census_benchmark(n_tasks, index, seed=seed, config=config)
        census.benchmarks += 1
        if not single.feasible:
            continue
        census.feasible += 1
        for kind, checked in single.moves_checked.items():
            census.record(
                kind, checked, [e for e in single.events if e.kind == kind]
            )
        if not keep_events:
            census.events.clear()
    return census


def _interferer_pairs(n: int) -> int:
    """Ordered (interferer, observed) pairs with observed lower priority."""
    return n * (n - 1) // 2
