"""Sensitivity analysis of stability constraints (paper sec. I, ref [17]).

The paper's abstract example of design complexity: to maximise a parameter
``x`` under a constraint ``f(x) <= 0``, *monotonicity* of ``f`` enables
binary search -- "by checking the constraint for one value of x, we can
find out if the optimum satisfies y < x or y > x.  Hence efficient pruning
of the search space."  Without monotonicity, binary search silently
returns wrong answers.

This module makes that story concrete for the classic sensitivity question
(Racu-Hamann-Ernst, the paper's reference [17]): *by how much can a task's
execution demand grow before the system breaks?*

* :func:`wcet_scaling_margin` -- binary search for the critical scaling
  factor of one task's (WCET, BCET), in the monotonicity-trusting style.
  For *scaling a task's own demand* the constraint metric of every task is
  genuinely monotone (interference and own demand both grow with the
  factor), so the binary search is sound -- this is the majority-case tool
  the paper advocates.
* :func:`priority_level_margin` -- the same question for a *discrete*
  parameter where monotonicity famously fails (the task's priority level):
  answered by exhaustive evaluation, with the non-monotone slack profile
  returned so callers can *see* the anomaly.
* :func:`sensitivity_report` -- per-task scaling margins for a whole
  assignment: the "how much slack does my design have" table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.api.service import analyze, task_verdict
from repro.errors import ModelError
from repro.rta.taskset import Task, TaskSet


@dataclass(frozen=True)
class ScalingMargin:
    """Critical demand-scaling factor of one task."""

    task_name: str
    factor: float            # largest validated scale (1.0 = no headroom growth)
    evaluations: int         # constraint evaluations spent
    binding_task: Optional[str]  # which task's constraint broke just past it


def _taskset_with_scaled_task(taskset: TaskSet, name: str, factor: float) -> Optional[TaskSet]:
    """Scale one task's WCET/BCET; ``None`` if the WCET leaves the period."""
    scaled = []
    for task in taskset:
        if task.name != name:
            scaled.append(task.copy())
            continue
        wcet = task.wcet * factor
        if wcet > task.period:
            return None
        scaled.append(replace(task, wcet=wcet, bcet=task.bcet * factor))
    return TaskSet(scaled)


def _first_violation(taskset: TaskSet) -> Optional[str]:
    """Name of the first task violating deadline/stability, else ``None``."""
    violating = analyze(taskset).violating
    return violating[0] if violating else None


def wcet_scaling_margin(
    taskset: TaskSet,
    task_name: str,
    *,
    tolerance: float = 1e-4,
    max_factor: float = 64.0,
) -> ScalingMargin:
    """Largest factor by which ``task_name``'s demand may grow.

    Requires the task set to carry a valid priority assignment.  The
    search is a textbook bisection on the factor, justified here because
    scaling *both* execution-time bounds of one task by a common factor
    moves every task's ``(L, J)`` metric monotonically upward:
    interference terms scale with the factor and the task's own demand
    does too.  (Contrast with :func:`priority_level_margin`, where no such
    argument exists and bisection would be unsound.)

    Returns the largest factor (within ``tolerance``, relative) for which
    the *whole* assignment stays valid.
    """
    taskset.check_distinct_priorities()
    taskset.by_name(task_name)  # raises ModelError for unknown tasks
    evaluations = 0

    def valid_at(factor: float) -> Tuple[bool, Optional[str]]:
        nonlocal evaluations
        evaluations += 1
        scaled = _taskset_with_scaled_task(taskset, task_name, factor)
        if scaled is None:
            return False, task_name
        violator = _first_violation(scaled)
        return violator is None, violator

    ok_now, violator = valid_at(1.0)
    if not ok_now:
        raise ModelError(
            f"task set is already invalid (task {violator!r}); sensitivity "
            "is defined for working designs"
        )

    # Exponential bracket, then bisection.
    low, high = 1.0, 2.0
    binding: Optional[str] = None
    while high <= max_factor:
        ok, violator = valid_at(high)
        if not ok:
            binding = violator
            break
        low, high = high, high * 2.0
    else:
        return ScalingMargin(
            task_name=task_name,
            factor=low,
            evaluations=evaluations,
            binding_task=None,
        )

    while (high - low) > tolerance * high:
        mid = 0.5 * (low + high)
        ok, violator = valid_at(mid)
        if ok:
            low = mid
        else:
            high = mid
            binding = violator
    return ScalingMargin(
        task_name=task_name,
        factor=low,
        evaluations=evaluations,
        binding_task=binding,
    )


def _sensitivity_worker(item, params, seed) -> Dict[str, object]:
    """Scaling margin of one task (sweep worker; taskset rides in params)."""
    margin = wcet_scaling_margin(
        params["taskset"], item["task"], tolerance=params["tolerance"]
    )
    return {
        "task": margin.task_name,
        "factor": margin.factor,
        "evaluations": margin.evaluations,
        "binding_task": margin.binding_task,
    }


def sensitivity_report(
    taskset: TaskSet, *, tolerance: float = 1e-3, jobs: int = 1
) -> Dict[str, ScalingMargin]:
    """Scaling margin of every task under the current assignment.

    Each task's bisection is independent, so the report is a natural
    per-task sweep: ``jobs > 1`` fans the tasks out over worker processes
    via the :mod:`repro.sweep` engine (the task set is pickled along).
    """
    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        name="sensitivity",
        worker=_sensitivity_worker,
        items=tuple({"task": task.name} for task in taskset),
        params={"taskset": taskset, "tolerance": tolerance},
        chunk_size=1,
    )
    result = run_sweep(spec, jobs=jobs)
    return {
        record["task"]: ScalingMargin(
            task_name=record["task"],
            factor=record["factor"],
            evaluations=record["evaluations"],
            binding_task=record["binding_task"],
        )
        for record in result.records
    }


@dataclass(frozen=True)
class PriorityLevelProfile:
    """Stability slack of one task at every priority level.

    ``slacks[k]`` is the task's constraint slack when assigned priority
    level ``levels[k]`` (other tasks keeping their relative order).  A
    profile that is not monotone in the level *is* a priority anomaly; the
    paper's point is that bisection over levels would then be unsound.
    """

    task_name: str
    levels: Tuple[int, ...]
    slacks: Tuple[float, ...]

    @property
    def is_monotone(self) -> bool:
        return all(
            b >= a - 1e-12 for a, b in zip(self.slacks, self.slacks[1:])
        )

    @property
    def best_level(self) -> int:
        best = max(range(len(self.levels)), key=lambda k: self.slacks[k])
        return self.levels[best]


def priority_level_margin(taskset: TaskSet, task_name: str) -> PriorityLevelProfile:
    """Slack of ``task_name`` at each priority level (exhaustive).

    Unlike the scaling factor, the priority level admits no monotonicity
    guarantee (the paper's headline anomaly), so every level is evaluated.
    Other tasks keep their relative order; the probed task is inserted at
    each level 1..n.
    """
    taskset.check_distinct_priorities()
    target = taskset.by_name(task_name)
    others = [
        t for t in taskset.sorted_by_priority(descending=False)
        if t.name != task_name
    ]
    n = len(taskset)
    levels: List[int] = []
    slacks: List[float] = []
    for level in range(1, n + 1):
        # Rebuild priorities: others keep order, target inserted at level.
        order = others[: level - 1] + [target] + others[level - 1 :]
        priorities = {t.name: i + 1 for i, t in enumerate(order)}
        probed = taskset.with_priorities(priorities)
        probed_target = probed.by_name(task_name)
        verdict = task_verdict(
            probed_target, probed.higher_priority(probed_target)
        )
        if not verdict.deadline_met:
            slack = float("-inf")
        elif verdict.slack is None:
            # No stability bound: headroom to the implicit deadline.
            slack = target.period - verdict.times.worst
        else:
            slack = verdict.slack
        levels.append(level)
        slacks.append(slack)
    return PriorityLevelProfile(
        task_name=task_name, levels=tuple(levels), slacks=tuple(slacks)
    )
