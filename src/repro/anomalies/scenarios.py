"""Concrete anomaly instances: executable counterparts of [20]'s examples.

:func:`priority_raise_anomaly_example` returns a small, fixed task set in
which *raising* a control task's priority strictly increases its
response-time jitter -- the paper's headline counter-example to "more
resource is always better".  The instance is the verbatim output of
:func:`find_priority_raise_anomaly` in its fixture-shaped mode (the exact
invocation is pinned in the test suite, so the provenance claim is
enforced, not just asserted) and is pinned as a regression fixture with
exact expected numbers in the test suite.

Mechanism of the fixture: with low priority, the task's best and worst
cases both suffer interference and ``R^w - R^b`` is moderate; after the
raise, the *best* case sheds almost all interference (interferers at BCET
fit before it) while the *worst* case sheds only part of one preemption
(interferers at WCET still hit), so the spread ``J`` widens.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.anomalies.detectors import (
    jitter_after_priority_raise,
    priority_raise_anomalies,
)
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet

#: Pinned invocation reproducing the fixture of
#: :func:`priority_raise_anomaly_example`:
#: ``find_priority_raise_anomaly(trials=FIXTURE_SEARCH_TRIALS,
#: seed=FIXTURE_SEARCH_SEED, fixture_shaped=True)``.
FIXTURE_SEARCH_SEED = 7
FIXTURE_SEARCH_TRIALS = 250

#: Period menu of the random searches (harmonic-ish values make the
#: response-time cascades that fuel jitter anomalies).
_SEARCH_PERIODS = (2.0, 4.0, 5.0, 8.0, 10.0, 16.0, 20.0)

#: Role names of the fixture-shaped family, in increasing-period order.
_FIXTURE_NAMES = ("fast", "quick", "mid", "ctl")


def priority_raise_anomaly_example() -> Tuple[TaskSet, str]:
    """A fixed 4-task instance where a priority raise increases jitter.

    Returns ``(taskset, task_name)``: raising ``task_name`` one level
    (above ``mid``) changes its exact response-time interface from
    ``(L, J) = (8.35, 2.24)`` to ``(6.49, 2.98)`` -- the latency improves
    but the jitter *grows*, and under the stability bound
    ``L + 2.78 J <= 14.68`` the task flips from stable (metric 14.5772,
    slack +0.1028) to unstable (metric 14.7744, slack -0.0944).  The
    instance is the verbatim output of
    ``find_priority_raise_anomaly(trials=FIXTURE_SEARCH_TRIALS,
    seed=FIXTURE_SEARCH_SEED, fixture_shaped=True)`` -- the provenance
    test re-runs that search and asserts exact equality.

    Mechanism: removing ``mid`` from the hp-set shortens the best case by
    a whole cascade (the best-case fixed point drops across a release
    boundary of the fast interferers, shedding their best-case
    preemptions too) while the worst case sheds only ``mid``'s direct
    worst-case interference -- so ``R^b`` falls by 1.86 but ``R^w`` only
    by 1.12, widening ``J``.
    """
    tasks = [
        Task(name="fast", period=4.0, wcet=1.43, bcet=1.36, priority=4),
        Task(name="quick", period=5.0, wcet=0.04, bcet=0.03, priority=3),
        Task(name="mid", period=8.0, wcet=0.54, bcet=0.5, priority=2),
        Task(
            name="ctl",
            period=16.0,
            wcet=5.1,
            bcet=5.1,
            priority=1,
            stability=LinearStabilityBound(a=2.78, b=14.68),
        ),
    ]
    return TaskSet(tasks), "ctl"


def _draw_fixture_shaped(rng: np.random.Generator) -> Optional[TaskSet]:
    """One draw of the fixture-shaped family (no stability bound yet).

    Four tasks with sorted distinct periods, rate-monotonic priorities and
    all parameters quantised to 2 decimals; the lowest-priority task is
    the control task and executes for a constant time (``bcet == wcet``),
    so all of its jitter comes from interference.
    """
    periods = np.sort(rng.choice(_SEARCH_PERIODS, size=4, replace=False))
    total_u = rng.uniform(0.5, 0.9)
    shares = rng.dirichlet(np.ones(4)) * total_u
    tasks = []
    for i in range(4):
        wcet = round(
            min(max(float(shares[i] * periods[i]), 0.01), float(periods[i])), 2
        )
        fraction = float(rng.uniform(0.1, 1.0))
        bcet = round(min(max(wcet * fraction, 0.01), wcet), 2)
        if i == 3:
            bcet = wcet
        tasks.append(
            Task(
                name=_FIXTURE_NAMES[i],
                period=float(periods[i]),
                wcet=wcet,
                bcet=bcet,
                priority=4 - i,
            )
        )
    try:
        return TaskSet(tasks)
    except Exception:
        return None


def _pin_fixture_budget(
    taskset: TaskSet, a: float
) -> Optional[TaskSet]:
    """Guide the budget ``b`` into the destabilising window, if one exists.

    Given a drawn task set and slope ``a``, checks whether raising the
    control task increases the stability metric ``L + a J``; if so, pins
    the budget halfway between the before/after metrics (rounded to 2
    decimals) so the raise flips the verdict -- the way such
    counter-examples are constructed in the literature.  Returns ``None``
    when the raise is not anomalous under ``a``, when rounding collapses
    the window, or when the resulting budget is implausible for the
    control period.
    """
    try:
        before, after = jitter_after_priority_raise(taskset, "ctl")
    except Exception:
        return None
    if not (before.finite and after.finite):
        return None
    metric_before = before.latency + a * before.jitter
    metric_after = after.latency + a * after.jitter
    if metric_after <= metric_before:
        return None
    b = round((metric_before + metric_after) / 2.0, 2)
    if not (metric_before <= b < metric_after):
        return None
    ctl = taskset.by_name("ctl")
    if not (0.8 * ctl.period <= b <= 1.4 * ctl.period):
        return None
    return TaskSet(
        t
        if t.name != "ctl"
        else Task(
            name=t.name,
            period=t.period,
            wcet=t.wcet,
            bcet=t.bcet,
            priority=t.priority,
            stability=LinearStabilityBound(a=a, b=b),
        )
        for t in taskset
    )


def find_priority_raise_anomaly(
    *,
    trials: int = 20_000,
    seed: int = 1,
    require_destabilising: bool = False,
    fixture_shaped: bool = False,
) -> Optional[TaskSet]:
    """Guided random search for a priority-raise anomaly instance.

    Two families:

    * default -- small task sets (3-4 tasks) with heavy execution-time
      variation and a randomly drawn stability bound on every task;
      returns the first set where some one-level raise degrades a task
      (``require_destabilising`` additionally demands a stability flip).
      Returning ``None`` within ``trials`` is itself evidence of rarity
      and is measured by the census module instead.
    * ``fixture_shaped`` -- the family of the pinned regression fixture:
      four tasks, 2-decimal quantised parameters, the lowest-priority
      control task with constant execution time and the *only* stability
      bound, whose budget is guided into the destabilising window of an
      anomalous raise (see :func:`_pin_fixture_budget`).  The fixture of
      :func:`priority_raise_anomaly_example` is the verbatim output at
      ``(seed=FIXTURE_SEARCH_SEED, trials=FIXTURE_SEARCH_TRIALS)``.
      Hits are always destabilising and always valid before the raise.
    """
    from repro.assignment.validate import validate_assignment

    rng = np.random.default_rng(seed)
    for _ in range(trials):
        if fixture_shaped:
            taskset = _draw_fixture_shaped(rng)
            a = round(float(rng.uniform(1.0, 3.0)), 2)
            if taskset is None:
                continue
            pinned = _pin_fixture_budget(taskset, a)
            if pinned is None:
                continue
            if not validate_assignment(pinned).valid:
                continue
            events = priority_raise_anomalies(pinned)
            if any(e.task_name == "ctl" and e.destabilising for e in events):
                return pinned
            continue
        n = int(rng.integers(3, 5))
        periods = rng.choice(_SEARCH_PERIODS, size=n, replace=False)
        periods = np.sort(periods)
        tasks = []
        total_u = rng.uniform(0.5, 0.9)
        shares = rng.dirichlet(np.ones(n)) * total_u
        for i in range(n):
            wcet = max(float(shares[i] * periods[i]), 1e-3)
            bcet = wcet * float(rng.uniform(0.1, 1.0))
            stability = LinearStabilityBound(
                a=float(rng.uniform(1.0, 3.0)),
                b=float(periods[i] * rng.uniform(0.4, 1.0)),
            )
            tasks.append(
                Task(
                    name=f"t{i}",
                    period=float(periods[i]),
                    wcet=wcet,
                    bcet=bcet,
                    priority=n - i,  # rate monotonic
                    stability=stability,
                )
            )
        taskset = TaskSet(tasks)
        events = priority_raise_anomalies(taskset)
        if not events:
            continue
        if require_destabilising and not any(e.destabilising for e in events):
            continue
        return taskset
    return None
