"""Concrete anomaly instances: executable counterparts of [20]'s examples.

:func:`priority_raise_anomaly_example` returns a small, fixed task set in
which *raising* a control task's priority strictly increases its
response-time jitter -- the paper's headline counter-example to "more
resource is always better".  The instance was found by
:func:`find_priority_raise_anomaly` (a guided random search kept here both
as API and as the provenance of the fixture) and is pinned as a regression
fixture with exact expected numbers in the test suite.

Mechanism of the fixture: with low priority, the task's best and worst
cases both suffer interference and ``R^w - R^b`` is moderate; after the
raise, the *best* case sheds almost all interference (interferers at BCET
fit before it) while the *worst* case sheds only part of one preemption
(interferers at WCET still hit), so the spread ``J`` widens.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.anomalies.detectors import priority_raise_anomalies
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet


def priority_raise_anomaly_example() -> Tuple[TaskSet, str]:
    """A fixed 4-task instance where a priority raise increases jitter.

    Returns ``(taskset, task_name)``: raising ``task_name`` one level
    (above ``mid``) changes its exact response-time interface from
    ``(L, J) = (10.19, 3.16)`` to ``(8.58, 3.73)`` -- the latency improves
    but the jitter *grows*, and under the stability bound
    ``L + 3 J <= 19.7`` the task flips from stable (metric 19.67) to
    unstable (metric 19.77).  The instance was found with
    :func:`find_priority_raise_anomaly` and is pinned with 2-decimal
    (exactly representable intent, verified in tests) parameters.

    Mechanism: removing ``mid`` from the hp-set shortens the best case by
    a whole cascade (the best-case fixed point drops across a release
    boundary of the fast interferers, shedding their best-case
    preemptions too) while the worst case sheds only ``mid``'s direct
    worst-case interference -- so ``R^b`` falls by 1.61 but ``R^w`` only
    by 1.04, widening ``J``.
    """
    tasks = [
        Task(name="fast", period=4.0, wcet=0.22, bcet=0.18, priority=4),
        Task(name="quick", period=5.0, wcet=1.49, bcet=1.26, priority=3),
        Task(name="mid", period=10.0, wcet=0.52, bcet=0.35, priority=2),
        Task(
            name="ctl",
            period=16.0,
            wcet=6.96,
            bcet=6.96,
            priority=1,
            stability=LinearStabilityBound(a=3.0, b=19.7),
        ),
    ]
    return TaskSet(tasks), "ctl"


def find_priority_raise_anomaly(
    *,
    trials: int = 20_000,
    seed: int = 1,
    require_destabilising: bool = False,
) -> Optional[TaskSet]:
    """Random search for a priority-raise anomaly instance.

    Draws small task sets with heavy execution-time variation (the fuel of
    jitter anomalies), assigns rate-monotonic-ish priorities, and returns
    the first set where some one-level raise degrades a task.  Returns
    ``None`` if no instance is found within ``trials`` -- which is itself
    evidence of rarity and is measured by the census module instead.
    """
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        n = int(rng.integers(3, 5))
        periods = rng.choice([2.0, 4.0, 5.0, 8.0, 10.0, 16.0, 20.0], size=n, replace=False)
        periods = np.sort(periods)
        tasks = []
        total_u = rng.uniform(0.5, 0.9)
        shares = rng.dirichlet(np.ones(n)) * total_u
        for i in range(n):
            wcet = max(float(shares[i] * periods[i]), 1e-3)
            bcet = wcet * float(rng.uniform(0.1, 1.0))
            stability = LinearStabilityBound(
                a=float(rng.uniform(1.0, 3.0)),
                b=float(periods[i] * rng.uniform(0.4, 1.0)),
            )
            tasks.append(
                Task(
                    name=f"t{i}",
                    period=float(periods[i]),
                    wcet=wcet,
                    bcet=bcet,
                    priority=n - i,  # rate monotonic
                    stability=stability,
                )
            )
        taskset = TaskSet(tasks)
        events = priority_raise_anomalies(taskset)
        if not events:
            continue
        if require_destabilising and not any(e.destabilising for e in events):
            continue
        return taskset
    return None
