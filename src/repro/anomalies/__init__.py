"""Scheduling anomalies: detection, construction, and measurement.

The subject matter of the paper: *anomalies* are violations of the
intuitive monotonicity of scheduling -- giving a control task "more"
resource (higher priority, or reducing others' interference) can *worsen*
its latency/jitter interface and destabilise its plant.

* :mod:`~repro.anomalies.detectors` -- predicates that detect, for a
  concrete task set, whether a parameter change (priority raise, WCET
  decrease of an interferer, period increase of an interferer) degrades a
  task's stability slack: the three anomaly families of [20] / sec. I.
* :mod:`~repro.anomalies.census` -- Monte-Carlo measurement of how often
  each anomaly family occurs over random benchmarks (the paper's
  "anomalies occur extremely rarely", quantified beyond Table I).
* :mod:`~repro.anomalies.scenarios` -- small concrete task sets exhibiting
  each anomaly, found by guided search and kept as regression fixtures
  (executable counterparts of the examples in [20]).
"""

from repro.anomalies.census import AnomalyCensus, run_anomaly_census
from repro.anomalies.detectors import (
    all_anomalies,
    jitter_after_priority_raise,
    priority_raise_anomalies,
    wcet_decrease_anomalies,
    period_increase_anomalies,
)
from repro.anomalies.scenarios import (
    find_priority_raise_anomaly,
    priority_raise_anomaly_example,
)
from repro.anomalies.sensitivity import (
    PriorityLevelProfile,
    ScalingMargin,
    priority_level_margin,
    sensitivity_report,
    wcet_scaling_margin,
)

__all__ = [
    "all_anomalies",
    "jitter_after_priority_raise",
    "priority_raise_anomalies",
    "wcet_decrease_anomalies",
    "period_increase_anomalies",
    "AnomalyCensus",
    "run_anomaly_census",
    "find_priority_raise_anomaly",
    "priority_raise_anomaly_example",
    "wcet_scaling_margin",
    "sensitivity_report",
    "priority_level_margin",
    "ScalingMargin",
    "PriorityLevelProfile",
]
