"""Tests of the benchmark task-set generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchgen.taskgen import (
    BenchmarkConfig,
    generate_benchmark_suite,
    generate_control_taskset,
)
from repro.control.plants import PLANT_LIBRARY
from repro.errors import ModelError


class TestConfig:
    def test_default_config_is_valid(self):
        BenchmarkConfig()

    def test_rejects_bad_utilization_range(self):
        with pytest.raises(ModelError):
            BenchmarkConfig(utilization_range=(0.5, 1.5))

    def test_rejects_bad_bcet_range(self):
        with pytest.raises(ModelError):
            BenchmarkConfig(bcet_fraction_range=(0.0, 0.5))


class TestGenerateTaskSet:
    def test_shape_and_wellformedness(self, rng):
        ts = generate_control_taskset(6, rng)
        assert len(ts) == 6
        for task in ts:
            assert 0 < task.bcet <= task.wcet <= task.period
            assert task.stability is not None
            assert task.plant_name in PLANT_LIBRARY
            lo, hi = PLANT_LIBRARY[task.plant_name].period_range
            assert lo <= task.period <= hi

    def test_total_utilization_in_range(self, rng):
        config = BenchmarkConfig(utilization_range=(0.4, 0.6))
        for _ in range(10):
            ts = generate_control_taskset(5, rng, config=config)
            assert 0.39 <= ts.utilization <= 0.61

    def test_explicit_utilization(self, rng):
        ts = generate_control_taskset(4, rng, utilization=0.5)
        assert ts.utilization == pytest.approx(0.5, abs=1e-6)

    def test_priorities_left_unassigned(self, rng):
        ts = generate_control_taskset(4, rng)
        assert all(t.priority is None for t in ts)


class TestSuite:
    def test_deterministic_per_index(self):
        first = list(generate_benchmark_suite([4], 3, seed=11))
        second = list(generate_benchmark_suite([4], 3, seed=11))
        for (n1, i1, ts1), (n2, i2, ts2) in zip(first, second):
            assert (n1, i1) == (n2, i2)
            assert [t.wcet for t in ts1] == [t.wcet for t in ts2]

    def test_covers_all_counts(self):
        seen = {n for n, _, _ in generate_benchmark_suite([4, 8], 2, seed=1)}
        assert seen == {4, 8}

    def test_different_seeds_differ(self):
        a = next(iter(generate_benchmark_suite([4], 1, seed=1)))[2]
        b = next(iter(generate_benchmark_suite([4], 1, seed=2)))[2]
        assert [t.wcet for t in a] != [t.wcet for t in b]
