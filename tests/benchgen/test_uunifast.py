"""Tests of the UUniFast utilisation generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen.uunifast import uunifast
from repro.errors import ModelError


class TestUUniFast:
    def test_sums_to_total(self, rng):
        for n in (1, 2, 5, 20):
            us = uunifast(n, 0.7, rng)
            assert len(us) == n
            assert sum(us) == pytest.approx(0.7)

    def test_all_positive(self, rng):
        for _ in range(50):
            assert all(u > 0 for u in uunifast(8, 0.9, rng))

    def test_single_task_gets_everything(self, rng):
        assert uunifast(1, 0.42, rng) == [pytest.approx(0.42)]

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(ModelError):
            uunifast(0, 0.5, rng)
        with pytest.raises(ModelError):
            uunifast(3, 0.0, rng)

    def test_distribution_is_exchangeable(self, rng):
        # Mean share of each index must be total/n (uniform simplex).
        n, total, reps = 4, 0.8, 4000
        sums = np.zeros(n)
        for _ in range(reps):
            sums += uunifast(n, total, rng)
        means = sums / reps
        assert np.allclose(means, total / n, atol=0.01)

    @given(st.integers(1, 15), st.floats(0.05, 0.99), st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_property_sum_and_positivity(self, n, total, seed):
        rng = np.random.default_rng(seed)
        us = uunifast(n, total, rng)
        assert sum(us) == pytest.approx(total, rel=1e-9)
        assert all(u >= 0 for u in us)
