"""Tests of the sweep executor: determinism, caching, failure handling."""

from __future__ import annotations

import json
import os

import pytest

from repro.exec import ExecError
from repro.sweep import SweepError, SweepResult, SweepSpec, run_sweep
from repro.sweep._testing import (
    failing_worker,
    seeded_draw_worker,
    square_worker,
)

pytestmark = pytest.mark.sweep


def _draw_spec(n=23, seed=7, chunk_size=5, name="draws"):
    return SweepSpec(
        name=name,
        worker=seeded_draw_worker,
        items=tuple({"index": i} for i in range(n)),
        seed=seed,
        chunk_size=chunk_size,
    )


class TestDeterminism:
    def test_jobs_1_vs_jobs_n_byte_identical(self):
        spec = _draw_spec()
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=3)
        assert serial.canonical_json() == parallel.canonical_json()
        assert serial.canonical_sha256() == parallel.canonical_sha256()

    def test_chunk_boundary_seeding(self):
        """Per-item seeding makes records independent of the chunking."""
        draws_by_chunking = []
        for chunk_size in (1, 4, 23):
            result = run_sweep(_draw_spec(chunk_size=chunk_size), jobs=1)
            draws_by_chunking.append(
                [r["draw"] for r in result.canonical_records()]
            )
        assert draws_by_chunking[0] == draws_by_chunking[1]
        assert draws_by_chunking[0] == draws_by_chunking[2]

    def test_records_carry_item_order(self):
        result = run_sweep(_draw_spec(chunk_size=4), jobs=2)
        assert [r["i"] for r in result.canonical_records()] == list(range(23))

    def test_different_seed_changes_draws(self):
        a = run_sweep(_draw_spec(seed=7), jobs=1)
        b = run_sweep(_draw_spec(seed=8), jobs=1)
        assert a.canonical_json() != b.canonical_json()


class TestCacheResume:
    def test_resume_reuses_chunks(self, tmp_path):
        spec = _draw_spec()
        cold = run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        assert cold.meta["cache_hits"] == 0
        warm = run_sweep(spec, jobs=1, cache_dir=str(tmp_path), resume=True)
        assert warm.meta["cache_hits"] == spec.n_chunks
        assert warm.canonical_json() == cold.canonical_json()

    def test_partial_resume_recomputes_missing_chunks(self, tmp_path):
        spec = _draw_spec()
        run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        victims = sorted(os.listdir(tmp_path))[:2]
        for name in victims:
            os.unlink(tmp_path / name)
        resumed = run_sweep(spec, jobs=1, cache_dir=str(tmp_path), resume=True)
        assert resumed.meta["cache_hits"] == spec.n_chunks - 2
        assert resumed.canonical_json() == run_sweep(spec, jobs=1).canonical_json()

    def test_fingerprint_mismatch_ignores_cache(self, tmp_path):
        run_sweep(_draw_spec(seed=7), jobs=1, cache_dir=str(tmp_path))
        other = run_sweep(
            _draw_spec(seed=8), jobs=1, cache_dir=str(tmp_path), resume=True
        )
        assert other.meta["cache_hits"] == 0

    def test_corrupt_cache_file_recomputed(self, tmp_path):
        spec = _draw_spec()
        run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        victim = sorted(os.listdir(tmp_path))[0]
        (tmp_path / victim).write_text("{truncated")
        resumed = run_sweep(spec, jobs=1, cache_dir=str(tmp_path), resume=True)
        assert resumed.meta["cache_hits"] == spec.n_chunks - 1
        assert resumed.canonical_json() == run_sweep(spec, jobs=1).canonical_json()

    def test_without_resume_cache_is_write_only(self, tmp_path):
        spec = _draw_spec()
        run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        again = run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        assert again.meta["cache_hits"] == 0


class TestFailurePropagation:
    def _failing_spec(self, chunk_size=1):
        return SweepSpec(
            name="boom",
            worker=failing_worker,
            items=(
                {"explode": False},
                {"explode": True},
                {"explode": False},
            ),
            chunk_size=chunk_size,
        )

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_worker_exception_names_chunk_and_cause(self, jobs):
        with pytest.raises(SweepError, match="chunk 1.*exploded"):
            run_sweep(self._failing_spec(), jobs=jobs)

    def test_cause_is_preserved(self):
        try:
            run_sweep(self._failing_spec(), jobs=1)
        except SweepError as error:
            assert isinstance(error.__cause__, ValueError)
        else:
            pytest.fail("expected SweepError")

    def test_invalid_jobs_rejected(self):
        # resolve_jobs raises the execution plane's ExecError;
        # SweepError subclasses it, so the broad catch still works.
        with pytest.raises(ExecError, match="jobs"):
            run_sweep(self._failing_spec(), jobs=-1)


class TestResultArtifact:
    def test_roundtrip(self, tmp_path):
        result = run_sweep(_draw_spec(), jobs=1)
        path = tmp_path / "sweep.json"
        result.write(str(path))
        loaded = SweepResult.load(str(path))
        assert loaded.canonical_json() == result.canonical_json()
        assert loaded.meta["jobs"] == 1

    def test_volatile_keys_stripped_from_canonical(self):
        spec = SweepSpec(
            name="vol",
            worker=square_worker,
            items=tuple({"value": i} for i in range(3)),
            volatile_keys=("value",),
        )
        result = run_sweep(spec, jobs=1)
        assert all("value" not in r for r in result.canonical_records())
        # ... but the artifact itself keeps them.
        assert all("value" in r for r in result.to_dict()["records"])

    def test_json_params_recorded_in_meta(self):
        spec = SweepSpec(
            name="p",
            worker=square_worker,
            items=tuple({"value": i} for i in range(2)),
            params={"offset": 3},
        )
        result = run_sweep(spec, jobs=1)
        assert result.meta["params"] == {"offset": 3}
        assert result.records[0]["value"] == 3  # offset applied


class TestExperimentDeterminism:
    """The acceptance-level property: real sweeps, jobs 1 vs jobs 4."""

    @pytest.mark.slow
    def test_census_byte_identical_across_jobs(self):
        from repro.experiments.census import sweep_spec

        spec = sweep_spec(task_counts=(4,), benchmarks=8, chunk_size=2)
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=4)
        assert serial.canonical_json() == parallel.canonical_json()

    @pytest.mark.slow
    def test_fig5_byte_identical_across_jobs(self):
        from repro.experiments.fig5 import sweep_spec

        spec = sweep_spec(task_counts=(4, 6), benchmarks=4, chunk_size=2)
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=4)
        assert serial.canonical_json() == parallel.canonical_json()
        # wall-clock samples are volatile, counts are not
        assert "bt_seconds" not in serial.canonical_records()[0]
        assert "bt_evaluations" in serial.canonical_records()[0]


class TestCorruptedCacheResume:
    """Resume semantics: any damaged cache file recomputes, never crashes.

    The truncated-file case was covered before PR 5; these pin the
    valid-JSON-wrong-shape corruptions that used to raise (KeyError /
    AttributeError) out of ``_load_cached_chunk``.
    """

    @pytest.mark.parametrize(
        "payload",
        [
            "[1, 2, 3]",  # valid JSON, not an object
            '"just a string"',
            "null",
            json.dumps({"format": 1}),  # object, fingerprint/records missing
            json.dumps({"format": 1, "fingerprint": "x", "chunk": 0}),
            json.dumps(
                {"format": 1, "fingerprint": "x", "chunk": 0, "records": "no"}
            ),
        ],
        ids=["list", "string", "null", "bare-format", "no-records", "bad-records"],
    )
    def test_wrong_shape_cache_file_recomputed(self, tmp_path, payload):
        spec = _draw_spec()
        run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        victim = sorted(
            name for name in os.listdir(tmp_path) if name.endswith(".json")
        )[0]
        (tmp_path / victim).write_text(payload)
        resumed = run_sweep(spec, jobs=1, cache_dir=str(tmp_path), resume=True)
        assert resumed.meta["cache_hits"] == spec.n_chunks - 1
        assert resumed.canonical_json() == run_sweep(spec, jobs=1).canonical_json()

    def test_records_with_non_dict_entries_recomputed(self, tmp_path):
        spec = _draw_spec()
        run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        victim = sorted(
            name for name in os.listdir(tmp_path) if name.endswith(".json")
        )[0]
        data = json.loads((tmp_path / victim).read_text())
        data["records"] = [1, 2, 3]
        (tmp_path / victim).write_text(json.dumps(data))
        resumed = run_sweep(spec, jobs=1, cache_dir=str(tmp_path), resume=True)
        assert resumed.meta["cache_hits"] == spec.n_chunks - 1
        assert resumed.canonical_json() == run_sweep(spec, jobs=1).canonical_json()


class TestSentinelStringsThroughChunkCache:
    """Genuine sentinel-spelled record strings survive cache round trips."""

    def test_colliding_strings_survive_resume(self, tmp_path):
        from repro.sweep._testing import sentinel_string_worker

        spec = SweepSpec(
            name="sentinels",
            worker=sentinel_string_worker,
            items=tuple({"index": i} for i in range(4)),
            chunk_size=2,
        )
        cold = run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        warm = run_sweep(spec, jobs=1, cache_dir=str(tmp_path), resume=True)
        assert warm.meta["cache_hits"] == spec.n_chunks
        for result in (cold, warm):
            record = result.canonical_records()[0]
            assert record["label"] == "NaN"  # a *string*, not a float
            assert record["tilded"] == "~Infinity"
            assert record["margin"] != record["margin"]  # a real nan float
        assert warm.canonical_json() == cold.canonical_json()

    def test_colliding_strings_survive_artifact_io(self, tmp_path):
        from repro.sweep._testing import sentinel_string_worker

        spec = SweepSpec(
            name="sentinels",
            worker=sentinel_string_worker,
            items=tuple({"index": i} for i in range(2)),
        )
        result = run_sweep(spec, jobs=1)
        path = tmp_path / "artifact.json"
        result.write(str(path))
        loaded = SweepResult.load(str(path))
        assert loaded.canonical_json() == result.canonical_json()
        assert loaded.records[0]["label"] == "NaN"
