"""Tests of SweepSpec: validation, chunking, fingerprints."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.sweep import SweepSpec
from repro.sweep._testing import seeded_draw_worker, square_worker


def _items(n):
    return tuple({"index": i, "value": i} for i in range(n))


class TestValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ModelError, match="non-empty name"):
            SweepSpec(name="", worker=square_worker, items=_items(3))

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ModelError, match="chunk_size"):
            SweepSpec(name="s", worker=square_worker, items=_items(3), chunk_size=0)

    def test_rejects_lambda_workers(self):
        with pytest.raises(ModelError, match="module-level"):
            SweepSpec(name="s", worker=lambda i, p, s: {}, items=_items(3))

    def test_rejects_nested_workers(self):
        def nested(item, params, seed):
            return {}

        with pytest.raises(ModelError, match="module-level"):
            SweepSpec(name="s", worker=nested, items=_items(3))


class TestChunking:
    def test_chunks_partition_items_in_order(self):
        spec = SweepSpec(
            name="s", worker=square_worker, items=_items(10), chunk_size=4
        )
        chunks = list(spec.chunks())
        assert [len(c) for c in chunks] == [4, 4, 2]
        flattened = [index for chunk in chunks for index, _ in chunk]
        assert flattened == list(range(10))
        assert spec.n_chunks == 3

    def test_exact_multiple(self):
        spec = SweepSpec(
            name="s", worker=square_worker, items=_items(8), chunk_size=4
        )
        assert [len(c) for c in spec.chunks()] == [4, 4]


class TestFingerprint:
    def test_stable_across_instances(self):
        a = SweepSpec(name="s", worker=square_worker, items=_items(5), seed=3)
        b = SweepSpec(name="s", worker=square_worker, items=_items(5), seed=3)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 4},
            {"chunk_size": 7},
            {"version": 2},
            {"params": {"offset": 1}},
            {"items": tuple({"index": i, "value": i} for i in range(6))},
            {"worker": seeded_draw_worker},
        ],
    )
    def test_changes_with_inputs(self, change):
        base = dict(
            name="s", worker=square_worker, items=_items(5), seed=3,
            chunk_size=32, version=1, params={},
        )
        assert (
            SweepSpec(**base).fingerprint()
            != SweepSpec(**{**base, **change}).fingerprint()
        )

    def test_object_params_are_content_sensitive(self):
        """Objects whose repr omits content (TaskSet prints only names)
        must still yield distinct fingerprints when their content differs,
        or one sweep could resume from another's cached chunks."""
        from repro.rta.taskset import Task, TaskSet

        def spec_for(wcet):
            taskset = TaskSet(
                [Task(name="a", period=4.0, wcet=wcet, priority=1)]
            )
            return SweepSpec(
                name="s",
                worker=square_worker,
                items=_items(2),
                params={"taskset": taskset},
            )

        assert spec_for(1.0).fingerprint() != spec_for(2.0).fingerprint()
        assert spec_for(1.0).fingerprint() == spec_for(1.0).fingerprint()

    def test_param_dict_order_does_not_matter(self):
        a = SweepSpec(
            name="s", worker=square_worker, items=_items(3),
            params={"x": 1, "y": 2},
        )
        b = SweepSpec(
            name="s", worker=square_worker, items=_items(3),
            params={"y": 2, "x": 1},
        )
        assert a.fingerprint() == b.fingerprint()
