"""Round-trip tests of the sentinel encoding (the PR-5 corruption fix).

``decode_nonfinite(encode_nonfinite(x)) == x`` must hold for *every*
JSON-able value -- including records whose genuine string values are
spelled ``"NaN"``/``"Infinity"``/``"-Infinity"``, which the pre-fix
decoder silently converted to floats.  The escape rule must also leave
the canonical bytes (and therefore every committed hash) of artifacts
without colliding strings untouched, and keep old artifacts decoding
identically.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sweep.result import (
    decode_nonfinite,
    encode_nonfinite,
    escape_sentinel,
    unescape_sentinel,
)

pytestmark = pytest.mark.sweep

SENTINELS = ("NaN", "Infinity", "-Infinity")


def _eq(a, b) -> bool:
    """Structural equality where nan == nan and -0.0 keeps its sign."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
        return a == b and math.copysign(1, a) == math.copysign(1, b)
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_eq(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        # encode_nonfinite canonicalises tuples to lists; compare content.
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    return type(a) is type(b) and a == b


class TestSentinelCollidingStrings:
    """The confirmed bug: genuine sentinel-spelled strings must survive."""

    @pytest.mark.parametrize("value", SENTINELS)
    def test_issue_repro(self, value):
        # Before the fix: decode(encode({"s": "NaN"})) == {"s": nan}.
        assert decode_nonfinite(encode_nonfinite({"s": value})) == {"s": value}

    @pytest.mark.parametrize(
        "value", [s for base in SENTINELS for s in (base, "~" + base, "~~" + base)]
    )
    def test_escaped_forms_round_trip(self, value):
        assert decode_nonfinite(encode_nonfinite(value)) == value

    @pytest.mark.parametrize(
        "value", ["nan", "inf", " NaN", "NaN ", "Infinity!", "~", "~x", "-infinity"]
    )
    def test_near_misses_pass_through_unescaped(self, value):
        assert encode_nonfinite(value) == value
        assert decode_nonfinite(value) == value

    def test_escape_unescape_helpers(self):
        assert escape_sentinel("NaN") == "~NaN"
        assert unescape_sentinel("~NaN") == "NaN"
        assert unescape_sentinel("NaN") == "NaN"  # string-typed fields
        assert unescape_sentinel("plain") == "plain"


class TestFloats:
    def test_nonfinite_floats_encode_to_bare_sentinels(self):
        assert encode_nonfinite(float("inf")) == "Infinity"
        assert encode_nonfinite(float("-inf")) == "-Infinity"
        assert encode_nonfinite(float("nan")) == "NaN"

    def test_nonfinite_floats_round_trip(self):
        out = decode_nonfinite(encode_nonfinite([math.nan, math.inf, -math.inf]))
        assert math.isnan(out[0])
        assert out[1] == math.inf
        assert out[2] == -math.inf

    def test_negative_zero_preserved(self):
        out = decode_nonfinite(encode_nonfinite({"k": -0.0}))
        assert out["k"] == 0.0
        assert math.copysign(1, out["k"]) == -1.0

    def test_encoded_form_is_json_safe(self):
        payload = {"a": math.nan, "b": ["Infinity", math.inf], "c": ("NaN",)}
        text = json.dumps(encode_nonfinite(payload), allow_nan=False)
        assert _eq(decode_nonfinite(json.loads(text)), {
            "a": math.nan, "b": ["Infinity", math.inf], "c": ["NaN"],
        })


class TestMixedRecords:
    def test_nested_tuples_lists_and_colliding_strings(self):
        record = {
            "name": "NaN",
            "values": [math.inf, "Infinity", ("-Infinity", [math.nan])],
            "meta": {"Infinity": "~NaN", "n": -0.0},
        }
        out = decode_nonfinite(encode_nonfinite(record))
        assert out["name"] == "NaN"
        assert out["values"][0] == math.inf
        assert out["values"][1] == "Infinity"
        assert out["values"][2][0] == "-Infinity"
        assert math.isnan(out["values"][2][1][0])
        # Dict *keys* are never encoded (they are schema, not data).
        assert out["meta"]["Infinity"] == "~NaN"

    def test_old_artifacts_decode_identically(self):
        # An artifact written before the escape rule: every sentinel in
        # it came from a float, and must still decode to that float.
        old = {"slack": "-Infinity", "cost": "Infinity", "margin": "NaN"}
        out = decode_nonfinite(old)
        assert out["slack"] == -math.inf
        assert out["cost"] == math.inf
        assert math.isnan(out["margin"])

    def test_hashes_stable_without_colliding_strings(self):
        # The rule must not move canonical bytes of ordinary records.
        record = {"name": "census-4", "slack": 0.25, "worst": math.inf, "ok": True}
        assert json.dumps(encode_nonfinite(record), sort_keys=True) == json.dumps(
            {"name": "census-4", "slack": 0.25, "worst": "Infinity", "ok": True},
            sort_keys=True,
        )


# -- property-style coverage -------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=20),
    st.sampled_from([s for b in SENTINELS for s in (b, "~" + b, "~~~" + b)]),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


@given(_values)
def test_encode_decode_round_trips(value):
    encoded = encode_nonfinite(value)
    # Encoded form must be strict-JSON serialisable as-is.
    json.dumps(encoded, allow_nan=False)
    assert _eq(decode_nonfinite(encoded), value)


@given(_values)
def test_encode_decode_round_trips_through_json(value):
    rewound = json.loads(json.dumps(encode_nonfinite(value), allow_nan=False))
    assert _eq(decode_nonfinite(rewound), value)
