"""Golden re-pin checks of the population kernel tier.

The population kernels promise that no recorded artifact hash moves: the
census sweep's ``canonical_sha256`` must be identical with the
population tier on, off, and across ``--jobs``.  The fast check pins a
small census across tiers in-process; the slow check re-pins the full
1002-set number recorded in ``BENCH_sweep.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.census import sweep_spec
from repro.sweep import run_sweep
from repro.tiers import POPULATION_KERNEL_ENV

_REPO = Path(__file__).resolve().parents[2]


def _census_sha(tmp_path, benchmarks, *, tier, jobs=1, tag=""):
    old = os.environ.get(POPULATION_KERNEL_ENV)
    os.environ[POPULATION_KERNEL_ENV] = tier
    try:
        result = run_sweep(
            sweep_spec(benchmarks=benchmarks),
            cache_dir=str(tmp_path / f"cache-{tier}-{jobs}{tag}"),
            jobs=jobs,
        )
    finally:
        if old is None:
            del os.environ[POPULATION_KERNEL_ENV]
        else:
            os.environ[POPULATION_KERNEL_ENV] = old
    return result.canonical_sha256()


class TestCensusShaAcrossTiers:
    def test_small_census_identical_on_off(self, tmp_path):
        on = _census_sha(tmp_path, 8, tier="on")
        off = _census_sha(tmp_path, 8, tier="off")
        assert on == off

    @pytest.mark.slow
    def test_full_census_matches_recorded_golden(self, tmp_path):
        bench = json.loads((_REPO / "BENCH_sweep.json").read_text())
        assert (
            _census_sha(tmp_path, 334, tier="on")
            == bench["canonical_sha256"]
        )

    @pytest.mark.slow
    def test_full_census_identical_across_jobs(self, tmp_path):
        assert _census_sha(tmp_path, 334, tier="on", jobs=1) == _census_sha(
            tmp_path, 334, tier="on", jobs=2
        )
