"""End-to-end integration: the full pipeline in one test module.

Each test walks a complete user story through several packages at once --
the kind of path the examples demonstrate, pinned as regression tests.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.assignment import (
    assign_backtracking,
    assign_unsafe_quadratic,
    validate_assignment,
)
from repro.benchgen import generate_control_taskset
from repro.codesign import assignment_control_cost
from repro.control import design_lqg, get_plant
from repro.jittermargin import stability_bound_for_plant
from repro.rta import Task, TaskSet, response_time_interface
from repro.sim import UniformExecution, simulate_fpps
from repro.sim.cosim import cosimulate_control_task

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def designed_system():
    """Plants -> bounds -> tasks -> priorities, as in quickstart.py."""
    servo = get_plant("dc_servo")
    pend = get_plant("inverted_pendulum")
    tasks = TaskSet(
        [
            Task(
                "servo_ctl", period=0.006, wcet=0.0011, bcet=0.0004,
                stability=stability_bound_for_plant(servo, 0.006, exact_period=True),
                plant_name="dc_servo",
            ),
            Task(
                "pend_ctl", period=0.020, wcet=0.004, bcet=0.002,
                stability=stability_bound_for_plant(pend, 0.020, exact_period=True),
                plant_name="inverted_pendulum",
            ),
        ]
    )
    result = assign_backtracking(tasks)
    assert result.priorities is not None
    return result.apply_to(tasks)


class TestDesignPipeline:
    def test_assignment_is_valid(self, designed_system):
        assert validate_assignment(designed_system).valid

    def test_interface_respects_bounds(self, designed_system):
        for name, times in response_time_interface(designed_system).items():
            bound = designed_system.by_name(name).stability
            assert bound.is_stable(times.latency, times.jitter)

    def test_quality_is_finite(self, designed_system):
        quality = assignment_control_cost(designed_system)
        assert quality.feasible
        assert all(c >= 0 for c in quality.per_task.values())

    def test_simulation_confirms_the_analysis(self, designed_system):
        interface = response_time_interface(designed_system)
        trace = simulate_fpps(
            designed_system, 2.0, execution_model=UniformExecution(), seed=3
        )
        for task in designed_system:
            worst = interface[task.name].worst
            best = interface[task.name].best
            for response in trace.response_times(task.name):
                assert best - 1e-9 <= response <= worst + 1e-9

    def test_cosimulation_stays_bounded(self, designed_system):
        plant = get_plant("dc_servo")
        q1, q12, q2 = plant.cost_weights()
        r1, r2 = plant.noise_model()
        design = design_lqg(
            plant.state_space(), 0.006, 0.0, q1, q12, q2, r1, r2
        )
        result = cosimulate_control_task(
            designed_system,
            "servo_ctl",
            plant.state_space(),
            design,
            duration=2.0,
            execution_model=UniformExecution(),
            x0=[0.01, 0.0],
        )
        assert not result.diverged


class TestGeneratedBenchmarkPipeline:
    def test_benchmark_roundtrip(self):
        """Generate -> assign (both algorithms) -> validate -> agree."""
        rng = np.random.default_rng([2024, 8, 0])
        taskset = generate_control_taskset(8, rng)
        bt = assign_backtracking(taskset)
        uq = assign_unsafe_quadratic(taskset)
        if bt.priorities is not None:
            assert validate_assignment(bt.apply_to(taskset)).valid
            if uq.claims_valid:
                assert validate_assignment(uq.apply_to(taskset)).valid

    def test_paper_narrative_on_one_seed_sweep(self):
        """Across a small sweep: UQ failures are rare and always caught by
        independent validation; BT never emits an invalid assignment."""
        failures = 0
        total = 40
        for index in range(total):
            rng = np.random.default_rng([31337, 5, index])
            taskset = generate_control_taskset(5, rng)
            uq = assign_unsafe_quadratic(taskset)
            uq_valid = validate_assignment(uq.apply_to(taskset)).valid
            if not uq_valid:
                failures += 1
            bt = assign_backtracking(taskset)
            if bt.priorities is not None:
                assert validate_assignment(bt.apply_to(taskset)).valid
        assert failures <= 0.1 * total
