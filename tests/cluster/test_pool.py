"""The process-pool compute backend: byte-identity, isolation, crashes.

The serving contract extends to every worker count: a body computed in a
pool worker (with its worker-lifetime memo) must be byte-identical to a
cold direct façade call.  The crash tests pin the acceptance criterion
that a worker death mid-batch never drops accepted requests.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.api.service import analyze, assign
from repro.cluster import ProcessPoolBackend
from repro.scenarios.workload import scenario_request_pool

pytestmark = pytest.mark.loadgen


@pytest.fixture(scope="module")
def systems():
    return scenario_request_pool(unique=6, seed=21)


@pytest.fixture()
def pool():
    backend = ProcessPoolBackend(2, memo_entries=4096)
    yield backend
    backend.close()


class TestByteIdentity:
    def test_analyze_matches_direct_facade(self, pool, systems):
        results = pool.compute(("analyze",), systems)
        assert [ok for ok, _, _ in results] == [True] * len(systems)
        direct = [analyze(system).report_json() for system in systems]
        assert [body for _, body, _ in results] == direct

    def test_analyze_repeat_through_warm_memo_is_identical(
        self, pool, systems
    ):
        first = pool.compute(("analyze",), systems)
        second = pool.compute(("analyze",), systems)
        assert [b for _, b, _ in first] == [b for _, b, _ in second]

    def test_assign_matches_direct_facade(self, pool, systems):
        results = pool.compute(("assign", None), systems)
        direct = [assign(system).outcome_json() for system in systems]
        assert [body for _, body, _ in results] == direct

    def test_assign_with_algorithm(self, pool, systems):
        results = pool.compute(("assign", "rate_monotonic"), systems)
        direct = [
            assign(system, algorithm="rate_monotonic").outcome_json()
            for system in systems
        ]
        assert [body for _, body, _ in results] == direct

    def test_meta_carries_analysis_summary(self, pool, systems):
        results = pool.compute(("analyze",), systems[:2])
        for _, body, meta in results:
            assert meta is not None and "summary" in meta
            assert meta["summary"]["stable"] == json.loads(body)["stable"]

    @pytest.mark.slow
    def test_four_workers_byte_identical(self, systems):
        backend = ProcessPoolBackend(4, memo_entries=4096)
        try:
            results = backend.compute(("analyze",), systems)
            direct = [analyze(system).report_json() for system in systems]
            assert [body for _, body, _ in results] == direct
        finally:
            backend.close()


class TestIsolation:
    def test_poisoned_payload_fails_alone(self, pool, systems):
        # A payload the façade blows up on (not a system at all) must
        # come back as its own (False, error) without failing the
        # healthy batch-mates it was sliced alongside.
        batch = list(systems[:3]) + [None]
        results = pool.compute(("analyze",), batch)
        assert [ok for ok, _, _ in results] == [True, True, True, False]
        direct = [analyze(system).report_json() for system in systems[:3]]
        assert [body for _, body, _ in results[:3]] == direct
        assert "error" in json.loads(results[3][1])


class TestCrashFailover:
    def test_worker_kill_mid_run_drops_nothing(self, pool, systems):
        pids = pool.worker_pids()
        assert len(pids) == 2
        os.kill(pids[0], signal.SIGKILL)
        results = pool.compute(("analyze",), systems)
        # Every accepted item still answered, byte-identical.
        assert [ok for ok, _, _ in results] == [True] * len(systems)
        direct = [analyze(system).report_json() for system in systems]
        assert [body for _, body, _ in results] == direct
        stats = pool.stats()
        assert stats["worker_crashes"] >= 1
        assert stats["pools_rebuilt"] >= 1

    def test_pool_recovers_after_crash(self, pool, systems):
        os.kill(pool.worker_pids()[0], signal.SIGKILL)
        pool.compute(("analyze",), systems[:2])  # absorb the crash
        # The rebuilt pool serves normally again, workers alive.
        results = pool.compute(("analyze",), systems)
        assert all(ok for ok, _, _ in results)
        assert len(pool.worker_pids()) == 2

    def test_failover_counted_in_stats(self, pool, systems):
        before = pool.stats()
        assert before["worker_crashes"] == 0
        os.kill(pool.worker_pids()[1], signal.SIGKILL)
        pool.compute(("analyze",), systems)
        after = pool.stats()
        assert after["worker_crashes"] >= 1
        assert after["failover_items"] >= 1
        assert after["batches"] == before["batches"] + 1


class TestSlicing:
    def test_contiguous_order_preserving_slices(self):
        backend = ProcessPoolBackend(3, memo_entries=0)
        try:
            slices = backend._slice(list(range(8)))
            assert [len(part) for part in slices] == [3, 3, 2]
            assert [x for part in slices for x in part] == list(range(8))
            assert backend._slice([1]) == [[1]]
        finally:
            backend.close()
