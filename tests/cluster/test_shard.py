"""The SO_REUSEPORT shard cluster: identity, aggregation, supervision.

Real processes behind one shared port.  The byte-identity contract must
hold no matter which shard the kernel routes a connection to; the
aggregated cluster routes must see every shard; and a shard killed
mid-flight must be restarted by the manager without taking the shared
port down.
"""

from __future__ import annotations

import os
import signal
import socket
import time

import pytest

from repro.api.service import analyze, assign
from repro.cluster import ClusterError, ShardManager, aggregate_stats
from repro.scenarios.workload import scenario_request_pool
from repro.serve.client import ServeClientError, wait_until_ready

pytestmark = [
    pytest.mark.loadgen,
    pytest.mark.skipif(
        not hasattr(socket, "SO_REUSEPORT"),
        reason="platform without SO_REUSEPORT",
    ),
]


@pytest.fixture(scope="module")
def systems():
    return scenario_request_pool(unique=4, seed=33)


@pytest.fixture()
def cluster(tmp_path):
    manager = ShardManager(
        port=0,
        workers=2,
        daemon_options={
            "cache_dir": str(tmp_path / "cache"),
            "batch_window": 0.002,
            "log_level": "warning",
        },
    )
    manager.start()
    yield manager
    manager.shutdown()


class TestShardedServing:
    def test_byte_identity_across_shards(self, cluster, systems):
        client = wait_until_ready(cluster.host, cluster.port)
        # Enough round trips that (statistically) both shards serve.
        for _ in range(3):
            for system in systems:
                status, body = client.analyze_raw(system.to_dict())
                assert status == 200
                assert body.decode("utf-8") == analyze(system).report_json()

    def test_assign_byte_identity(self, cluster, systems):
        client = wait_until_ready(cluster.host, cluster.port)
        for system in systems:
            status, body = client.assign_raw(
                system.to_dict(), algorithm="audsley"
            )
            assert status == 200
            direct = assign(system, algorithm="audsley").outcome_json()
            assert body.decode("utf-8") == direct

    def test_health_reports_shard_topology(self, cluster):
        client = cluster.client()
        health = client.health()
        assert health["mode"] == "shard"
        assert health["workers"] == 2
        assert health["shard_index"] in (0, 1)

    def test_cluster_stats_aggregates_both_shards(self, cluster, systems):
        client = wait_until_ready(cluster.host, cluster.port)
        for system in systems:
            client.analyze_raw(system.to_dict())
        aggregated = client.cluster_stats()
        assert aggregated["cluster"]["workers"] == 2
        assert aggregated["cluster"]["workers_up"] == 2
        indices = {
            shard["shard_index"]
            for shard in aggregated["cluster"]["shards"]
        }
        assert indices == {0, 1}
        # The sum over shards covers at least the model requests (each
        # shard also took control traffic, so >=).
        assert aggregated["requests_total"] >= len(systems)

    def test_cluster_metrics_exposition(self, cluster):
        client = wait_until_ready(cluster.host, cluster.port)
        text = client.cluster_metrics()
        assert 'repro_cluster_shard_up{shard="0"} 1' in text
        assert 'repro_cluster_shard_up{shard="1"} 1' in text
        assert "repro_cluster_workers 2" in text

    def test_manager_stats_fan_out(self, cluster):
        stats = cluster.stats()
        assert stats["cluster"]["workers_up"] == 2
        assert stats["cluster"]["restarts"] == 0


class TestSupervision:
    def test_crashed_shard_is_restarted(self, cluster, systems):
        victim = cluster._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if cluster.restarts >= 1 and cluster.alive() == 2:
                break
            time.sleep(0.1)
        assert cluster.restarts >= 1
        assert cluster.alive() == 2
        # The shared port keeps serving, byte-identical, after restart.
        client = wait_until_ready(cluster.host, cluster.port)
        for system in systems:
            status, body = client.analyze_raw(system.to_dict())
            assert status == 200
            assert body.decode("utf-8") == analyze(system).report_json()
        # The restart count is surfaced in every shard's stats topology.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            aggregated = cluster.stats()
            if aggregated["topology"]["cluster_restarts"] >= 1:
                break
            time.sleep(0.1)
        assert aggregated["topology"]["cluster_restarts"] >= 1

    def test_shutdown_stops_every_shard(self, tmp_path):
        manager = ShardManager(
            port=0,
            workers=2,
            daemon_options={
                "batch_window": 0.002,
                "log_level": "warning",
            },
        )
        manager.start()
        assert manager.alive() == 2
        manager.shutdown()
        assert manager.alive() == 0
        with pytest.raises(ServeClientError):
            wait_until_ready(manager.host, manager.port, timeout=1.0)


class TestAggregation:
    def test_counters_sum_and_capacities_max(self):
        shard = {
            "requests_total": 10,
            "errors": 1,
            "store": {"hits_memory": 4, "max_entries": 1024},
            "topology": {"shard_index": 0, "mode": "shard"},
        }
        other = {
            "requests_total": 7,
            "errors": 0,
            "store": {"hits_memory": 2, "max_entries": 1024},
            "topology": {"shard_index": 1, "mode": "shard"},
        }
        merged = aggregate_stats([shard, other])
        assert merged["requests_total"] == 17
        assert merged["errors"] == 1
        assert merged["store"]["hits_memory"] == 6
        assert merged["store"]["max_entries"] == 1024
        assert merged["cluster"]["workers_up"] == 2

    def test_down_shard_counted_not_dropped(self):
        merged = aggregate_stats([{"requests_total": 5}, None])
        assert merged["cluster"]["workers_down"] == 1
        assert merged["requests_total"] == 5
        assert merged["cluster"]["shards"][1] == {"up": False}

    def test_reuseport_required(self, monkeypatch):
        monkeypatch.delattr(socket, "SO_REUSEPORT", raising=False)
        with pytest.raises(ClusterError):
            ShardManager(port=0, workers=2)
