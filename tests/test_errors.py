"""Tests of the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.errors import (
    DimensionError,
    ModelError,
    NumericalError,
    ReproError,
    RiccatiError,
    ScheduleError,
    UnstableLoopError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (
            DimensionError,
            ModelError,
            NumericalError,
            RiccatiError,
            ScheduleError,
            UnstableLoopError,
        ):
            assert issubclass(exc, ReproError)

    def test_numerical_errors_are_arithmetic(self):
        assert issubclass(RiccatiError, ArithmeticError)
        assert issubclass(UnstableLoopError, NumericalError)

    def test_model_errors_are_value_errors(self):
        # Callers using plain ValueError handling still catch them.
        assert issubclass(ModelError, ValueError)
        assert issubclass(DimensionError, ValueError)

    def test_one_base_catch_suffices(self):
        with pytest.raises(ReproError):
            raise RiccatiError("no stabilising solution")


class TestErrorsCarryContext:
    def test_riccati_error_from_unstabilisable(self):
        import numpy as np

        from repro.linalg.riccati import solve_dare

        with pytest.raises(RiccatiError, match="stabilisable|residual|diverged"):
            solve_dare(
                np.diag([2.0, 0.5]),
                np.array([[0.0], [1.0]]),
                np.eye(2),
                np.array([[1.0]]),
            )

    def test_schedule_error_mentions_task(self):
        from repro.rta.taskset import Task
        from repro.rta.wcrt import worst_case_response_time

        hog = Task(name="hog", period=1.0, wcet=1.0)
        victim = Task(name="victim", period=10.0, wcet=1.0)
        with pytest.raises(ScheduleError, match="utilisation"):
            worst_case_response_time(victim, [hog])
