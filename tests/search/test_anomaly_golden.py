"""Golden anomaly fixtures: the paper's headline algorithm ordering.

Two pinned instances, two halves of the paper's argument:

* the **priority-raise fixture** (`repro.anomalies.scenarios`): a valid
  design sits on the stability boundary; the anomalous one-level raise
  destabilises it.  Every sound search strategy must (re)find a valid
  order here, and the raised order must validate as unstable.
* a **census anomaly instance** (benchmark protocol, seed 2017, n=4,
  index 72 -- the first Table-I-style failure of that stream): the
  monotonicity-trusting greedy commits an *invalid* assignment, Audsley's
  OPA fails cleanly at the same dead end, and the complete backtracking
  search proves (with actual backtracking) that no valid order exists --
  exhaustive enumeration agrees.  This is the paper's headline ordering
  of the algorithms' capabilities: unsafe greedy < sound-but-greedy OPA
  < complete Algorithm 1.

  (Empirically, the max-slack greedy of this code base dead-ends only on
  genuinely infeasible census instances: a search over >1.7 million
  random draws found no feasible instance with a greedy dead end, so
  "OPA fails, backtracking finds an order" does not occur in this
  family; backtracking's advantage materialises as *proof of
  infeasibility* where the unsafe greedy silently emits a broken
  design.)

Both outcomes must be preserved bit-for-bit by the memoised engine, in
any algorithm order over a shared context.
"""

from __future__ import annotations

import numpy as np

from repro.anomalies.scenarios import priority_raise_anomaly_example
from repro.api import analyze, assign
from repro.assignment import count_valid_orders
from repro.benchgen.taskgen import generate_control_taskset
from repro.search import SearchContext, run_strategy

#: Census-protocol coordinates of the pinned greedy-dead-end instance.
CENSUS_SEED, CENSUS_N, CENSUS_INDEX = 2017, 4, 72


def census_anomaly_instance():
    rng = np.random.default_rng([CENSUS_SEED, CENSUS_N, CENSUS_INDEX])
    return generate_control_taskset(CENSUS_N, rng)


class TestPriorityRaiseFixture:
    def test_sound_strategies_refind_a_valid_order(self):
        taskset, control = priority_raise_anomaly_example()
        context = SearchContext()
        for algorithm in ("audsley", "backtracking", "unsafe_quadratic"):
            result = run_strategy(algorithm, taskset, context=context)
            assert result.succeeded, algorithm
            assert analyze(result.apply_to(taskset)).stable, algorithm
            # The fixture pins the searched order: ctl lowest.
            assert result.priorities[control] == 1, algorithm

    def test_greedy_costs_are_the_paper_quadratic(self):
        taskset, _ = priority_raise_anomaly_example()
        n = len(taskset)
        for algorithm in ("audsley", "backtracking", "unsafe_quadratic"):
            result = run_strategy(algorithm, taskset)
            assert result.evaluations == n * (n + 1) // 2
            assert result.backtracks == 0

    def test_fixture_admits_exactly_six_orders(self):
        taskset, _ = priority_raise_anomaly_example()
        assert count_valid_orders(taskset) == 6

    def test_raised_order_is_invalid_but_searched_order_is_not(self):
        taskset, control = priority_raise_anomaly_example()
        # The anomalous move: raise the control task one level (swap with
        # the priority-2 task) -- the paper's destabilising raise.
        raised = {t.name: t.priority for t in taskset}
        (mid_name,) = [n for n, p in raised.items() if p == 2]
        raised[control], raised[mid_name] = 2, 1
        assert not analyze(taskset.with_priorities(raised)).stable
        outcome = assign(taskset.with_priorities(raised))
        assert outcome.ok  # the search recovers the valid design


class TestCensusAnomalyInstance:
    """The pinned greedy dead end of the census stream."""

    def test_headline_ordering(self):
        taskset = census_anomaly_instance()
        context = SearchContext()

        unsafe = run_strategy("unsafe_quadratic", taskset, context=context)
        assert unsafe.priorities is not None  # always commits ...
        assert unsafe.claims_valid is False  # ... past a violation here
        assert not analyze(unsafe.apply_to(taskset)).stable  # Table I row

        audsley = run_strategy("audsley", taskset, context=context)
        assert audsley.priorities is None  # OPA fails cleanly instead

        backtracking = run_strategy(
            "backtracking", taskset, context=context
        )
        assert backtracking.priorities is None  # complete: proves it
        assert backtracking.backtracks >= 1  # by actually backtracking

        exhaustive = run_strategy("exhaustive", taskset, context=context)
        assert exhaustive.priorities is None  # ground truth agrees
        assert count_valid_orders(taskset, context=context) == 0

    def test_memoised_path_preserves_the_outcome(self):
        taskset = census_anomaly_instance()
        cold = {
            name: run_strategy(name, taskset)
            for name in ("unsafe_quadratic", "audsley", "backtracking")
        }
        # Any suite order over one shared context must reproduce the cold
        # outcomes and counts exactly.
        for order in (
            ("unsafe_quadratic", "audsley", "backtracking"),
            ("backtracking", "unsafe_quadratic", "audsley"),
        ):
            context = SearchContext()
            for name in order:
                warm = run_strategy(name, taskset, context=context)
                assert warm.priorities == cold[name].priorities, name
                assert warm.claims_valid == cold[name].claims_valid, name
                assert warm.evaluations == cold[name].evaluations, name
                assert warm.backtracks == cold[name].backtracks, name
