"""Semantics of the shared search context: memo, counters, kernels."""

from __future__ import annotations

import pytest

from _population import random_taskset
from repro.assignment.predicate import EvaluationCounter, stability_slack
from repro.errors import ModelError
from repro.rta.interface import latency_jitter
from repro.search import SearchContext, run_strategy
from repro.search.kernels import evaluate_candidate, make_record


def _record(task):
    return make_record(
        task.period, task.wcet, task.bcet, task.stability, task.name
    )


class TestKernelsMatchScalarPredicate:
    """The batched kernels must be float-identical to the scalar path."""

    def test_evaluate_candidate_bit_equal_on_population(self):
        for n in (2, 3, 5, 8):
            for index in range(6):
                taskset = random_taskset(n, index, seed=77)
                tasks = list(taskset)
                for i, task in enumerate(tasks):
                    others = tasks[:i] + tasks[i + 1 :]
                    best, worst, slack = evaluate_candidate(
                        _record(task), [_record(t) for t in others]
                    )
                    times = latency_jitter(task, others)
                    assert best == times.best  # bit-equal, not approx
                    assert worst == times.worst
                    reference = stability_slack(
                        task, others, EvaluationCounter()
                    )
                    assert slack == reference

    def test_unbounded_task_uses_deadline_slack(self):
        taskset = random_taskset(3, 0, seed=78)
        task = taskset[0].copy()
        task.stability = None
        others = list(taskset)[1:]
        _, worst, slack = evaluate_candidate(
            _record(task), [_record(t) for t in others]
        )
        assert slack == task.period - worst


class TestContextMemo:
    def test_logical_count_ticks_on_hits(self):
        taskset = random_taskset(4, 1)
        context = SearchContext()
        run = context.run()
        ids = context.intern_all(taskset)
        first = run.level_slacks(ids)
        again = run.level_slacks(ids)
        assert first == again
        assert run.counter.count == 8  # 2 x 4 logical queries
        assert run.counter.hits == 4  # second pass fully cached
        assert run.counter.recomputations == 4

    def test_interning_is_content_keyed(self):
        taskset = random_taskset(4, 2)
        context = SearchContext()
        a = context.intern_all(taskset)
        b = context.intern_all(taskset.copy())  # fresh objects, same content
        assert a == b
        assert context.stats()["interned_tasks"] == 4

    def test_memo_shared_across_tasksets_with_common_tasks(self):
        taskset = random_taskset(5, 3)
        context = SearchContext()
        run_strategy("audsley", taskset, context=context)
        # A second task set sharing 4 of 5 tasks: subproblems not
        # involving the changed task replay from the memo.
        import dataclasses

        tasks = [t.copy() for t in taskset]
        tasks[0] = dataclasses.replace(tasks[0], wcet=tasks[0].wcet * 0.9)
        from repro.rta.taskset import TaskSet

        result = run_strategy("audsley", TaskSet(tasks), context=context)
        assert result.cache_hits > 0

    def test_per_run_counters_are_independent(self):
        taskset = random_taskset(4, 4)
        context = SearchContext()
        first = run_strategy("audsley", taskset, context=context)
        second = run_strategy("unsafe_quadratic", taskset, context=context)
        assert first.evaluations == second.evaluations
        assert first.cache_hits == 0
        assert second.cache_hits == second.evaluations  # fully warmed
        totals = context.stats()
        assert totals["evaluations"] == (
            first.evaluations + second.evaluations
        )
        assert totals["cache_hits"] == second.cache_hits

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ModelError):
            run_strategy("simulated_annealing", random_taskset(3, 0))

    def test_unknown_option_rejected(self):
        with pytest.raises(ModelError):
            run_strategy("audsley", random_taskset(3, 0), budget=3)
