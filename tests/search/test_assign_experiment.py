"""The ``assign`` sweep experiment: determinism, reduction, skipping."""

from __future__ import annotations

import pytest

from repro.experiments.assign import (
    ALGORITHMS,
    from_sweep,
    run_assign,
    sweep_spec,
)
from repro.experiments.runner import EXPERIMENTS, REDUCERS, SWEEPS
from repro.sweep import run_sweep


def test_registered_in_all_three_registries():
    assert "assign" in EXPERIMENTS
    assert "assign" in SWEEPS
    assert "assign" in REDUCERS


def test_small_run_reduces_and_renders():
    result = run_assign(task_counts=(3, 4), benchmarks=3)
    assert result.task_counts == (3, 4)
    rendered = result.render()
    for algorithm in ALGORITHMS:
        assert algorithm in rendered
    # The shared context makes the later suite members nearly free.
    bt = result.row("backtracking", 4)
    assert bt.instances == 3
    assert bt.mean_recomputations <= bt.mean_evaluations


def test_exhaustive_skipped_above_cap():
    spec = sweep_spec(
        task_counts=(3,), benchmarks=2, exhaustive_max_n=2
    )
    records = run_sweep(spec, jobs=1).records
    assert all(r["exhaustive_success"] is None for r in records)
    result = from_sweep(run_sweep(spec, jobs=1))
    assert result.row("exhaustive", 3).instances == 0


def test_logical_counts_match_cold_runs():
    """Suite records must report the paper's counts despite the memo."""
    import numpy as np

    from repro.benchgen.taskgen import generate_control_taskset
    from repro.search import run_strategy

    spec = sweep_spec(task_counts=(4,), benchmarks=2, seed=31)
    records = run_sweep(spec, jobs=1).records
    for record in records:
        rng = np.random.default_rng([31, 4, record["index"]])
        taskset = generate_control_taskset(4, rng)
        for algorithm in ("audsley", "unsafe_quadratic", "backtracking"):
            cold = run_strategy(algorithm, taskset)
            assert record[f"{algorithm}_evaluations"] == cold.evaluations
            assert record[f"{algorithm}_priorities"] == cold.priorities


@pytest.mark.sweep
def test_canonical_records_identical_across_jobs():
    spec = sweep_spec(task_counts=(3, 4), benchmarks=4)
    serial = run_sweep(spec, jobs=1)
    parallel = run_sweep(spec, jobs=2)
    assert serial.canonical_sha256() == parallel.canonical_sha256()
    # Assignments ride in the canonical records -- byte-identical too.
    assert [r["backtracking_priorities"] for r in serial.records] == [
        r["backtracking_priorities"] for r in parallel.records
    ]
