"""Golden pre/post-refactor equivalence of every assignment algorithm.

The contract of the ``repro.search`` refactor: on any task set, every
algorithm returns **byte-identical** assignments, success flags, and
logical evaluation counts to the seed implementations (frozen in
``_seed_reference.py``) -- whether the search context is cold, or shared
across the whole algorithm suite (maximal memo reuse), or shared across
task sets.  Pinned here on 250+ random UUniFast benchmark sets.
"""

from __future__ import annotations

import pytest

from repro.assignment import (
    assign_audsley,
    assign_backtracking,
    assign_exhaustive,
    assign_rate_monotonic,
    assign_slack_monotonic,
    assign_unsafe_quadratic,
    count_valid_orders,
)
from repro.search import SearchContext

from _population import random_taskset
from _seed_reference import SEED_ALGORITHMS, seed_count_valid_orders

ENGINE_ALGORITHMS = {
    "rate_monotonic": assign_rate_monotonic,
    "slack_monotonic": assign_slack_monotonic,
    "audsley": assign_audsley,
    "unsafe_quadratic": assign_unsafe_quadratic,
    "backtracking": assign_backtracking,
    "exhaustive": assign_exhaustive,
}

#: Suite order fixed so that the shared-context runs hit a warmed memo.
SUITE = (
    "rate_monotonic",
    "slack_monotonic",
    "audsley",
    "unsafe_quadratic",
    "backtracking",
    "exhaustive",
)


def _assert_suite_equivalent(taskset, *, exhaustive: bool, where: str):
    shared = SearchContext()
    for algorithm in SUITE:
        if algorithm == "exhaustive" and not exhaustive:
            continue
        expected = SEED_ALGORITHMS[algorithm](taskset)
        priorities, claims_valid, evaluations, backtracks = expected
        for context in (None, shared):
            result = ENGINE_ALGORITHMS[algorithm](taskset, context=context)
            label = (
                f"{where}/{algorithm}/"
                f"{'shared' if context is shared else 'cold'}"
            )
            assert result.priorities == priorities, label
            assert result.claims_valid == claims_valid, label
            assert result.evaluations == evaluations, label
            assert result.backtracks == backtracks, label


class TestSeedEquivalenceSmoke:
    """Fast-lane subset: a couple dozen sets, all algorithms."""

    def test_small_population(self):
        for n in (3, 4, 5):
            for index in range(8):
                taskset = random_taskset(n, index)
                _assert_suite_equivalent(
                    taskset, exhaustive=n <= 4, where=f"n{n}i{index}"
                )

    def test_count_valid_orders_matches_seed(self):
        for index in range(4):
            taskset = random_taskset(4, index)
            assert count_valid_orders(taskset) == seed_count_valid_orders(
                taskset
            )
            # And through a warmed shared context.
            context = SearchContext()
            assign_exhaustive(taskset, context=context)
            assert (
                count_valid_orders(taskset, context=context)
                == seed_count_valid_orders(taskset)
            )


@pytest.mark.slow
class TestSeedEquivalence250:
    """The full pin: >= 250 random UUniFast sets, every algorithm."""

    def test_polynomial_algorithms_250_sets(self):
        checked = 0
        for n in (3, 4, 5, 6, 7):
            for index in range(50):
                taskset = random_taskset(n, index)
                _assert_suite_equivalent(
                    taskset, exhaustive=False, where=f"n{n}i{index}"
                )
                checked += 1
        assert checked == 250

    def test_exhaustive_100_sets(self):
        checked = 0
        for n in (3, 4, 5):
            for index in range(34):
                taskset = random_taskset(n, index)
                expected = SEED_ALGORITHMS["exhaustive"](taskset)
                shared = SearchContext()
                # Warm the memo through the greedy suite first -- the
                # exhaustive run must be equivalent even fully cached.
                assign_audsley(taskset, context=shared)
                assign_backtracking(taskset, context=shared)
                for context in (None, shared):
                    result = assign_exhaustive(taskset, context=context)
                    assert result.priorities == expected[0]
                    assert result.claims_valid == expected[1]
                    assert result.evaluations == expected[2]
                checked += 1
        assert checked == 102

    def test_backtracking_budget_path_matches_seed(self):
        for n, index in ((5, 3), (6, 7), (7, 11)):
            taskset = random_taskset(n, index)
            for budget in (1, 5, 12):
                expected = SEED_ALGORITHMS["backtracking"](
                    taskset, max_evaluations=budget
                )
                result = assign_backtracking(
                    taskset, max_evaluations=budget
                )
                assert result.priorities == expected[0]
                assert result.claims_valid == expected[1]
                assert result.evaluations == expected[2]
                assert result.backtracks == expected[3]
