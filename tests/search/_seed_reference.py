"""Frozen copies of the pre-``repro.search`` assignment implementations.

These are the seed algorithms verbatim (modulo cosmetic renames): scalar
:func:`repro.assignment.predicate.stability_slack` per candidate, no
memoisation, no batching, no sharing.  The equivalence tests pin the
refactored engine against them byte-for-byte -- assignments, success
flags, and logical evaluation counts -- on hundreds of random UUniFast
task sets.  Do not "improve" this module; its value is that it does not
change.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.assignment.predicate import (
    EvaluationCounter,
    is_feasible,
    stability_slack,
)
from repro.rta.taskset import Task, TaskSet


def seed_audsley(taskset: TaskSet):
    remaining: List[Task] = [t.copy() for t in taskset]
    counter = EvaluationCounter()
    assignment: Dict[str, int] = {}
    for level in range(1, len(taskset) + 1):
        best_index = -1
        best_slack = float("-inf")
        for index, candidate in enumerate(remaining):
            others = remaining[:index] + remaining[index + 1 :]
            slack = stability_slack(candidate, others, counter)
            if slack > best_slack:
                best_slack = slack
                best_index = index
        if best_slack < 0.0:
            return None, False, counter.count, 0
        chosen = remaining.pop(best_index)
        assignment[chosen.name] = level
    return assignment, True, counter.count, 0


def seed_unsafe_quadratic(taskset: TaskSet):
    remaining: List[Task] = [t.copy() for t in taskset]
    counter = EvaluationCounter()
    assignment: Dict[str, int] = {}
    believed_valid = True
    for level in range(1, len(remaining) + 1):
        best_index = -1
        best_slack = float("-inf")
        for index, candidate in enumerate(remaining):
            others = remaining[:index] + remaining[index + 1 :]
            slack = stability_slack(candidate, others, counter)
            if slack > best_slack:
                best_slack = slack
                best_index = index
        chosen = remaining.pop(best_index)
        assignment[chosen.name] = level
        if best_slack < 0.0:
            believed_valid = False
    return assignment, believed_valid, counter.count, 0


def seed_backtracking(taskset: TaskSet, max_evaluations: int = 10_000_000):
    tasks = [t.copy() for t in taskset]
    counter = EvaluationCounter()
    backtracks = 0
    assignment: Dict[str, int] = {}

    class _BudgetExhausted(Exception):
        pass

    def backtrack(remaining: List[Task], level: int) -> bool:
        nonlocal backtracks
        if not remaining:
            return True
        if counter.count > max_evaluations:
            raise _BudgetExhausted()
        scored = []
        for index, candidate in enumerate(remaining):
            others = remaining[:index] + remaining[index + 1 :]
            slack = stability_slack(candidate, others, counter)
            scored.append((slack, index, candidate, others))
        scored.sort(key=lambda item: (-item[0], item[1]))
        for slack, _, candidate, others in scored:
            if slack < 0.0:
                break
            assignment[candidate.name] = level
            if backtrack(others, level + 1):
                return True
            del assignment[candidate.name]
            backtracks += 1
        return False

    try:
        found = backtrack(tasks, 1)
    except _BudgetExhausted:
        return None, False, counter.count, backtracks
    return (
        (dict(assignment) if found else None),
        found,
        counter.count,
        backtracks,
    )


def seed_rate_monotonic(taskset: TaskSet):
    ordered = sorted(taskset, key=lambda t: t.period, reverse=True)
    return (
        {task.name: level + 1 for level, task in enumerate(ordered)},
        None,
        0,
        0,
    )


def seed_slack_monotonic(taskset: TaskSet):
    counter = EvaluationCounter()
    tasks = [t.copy() for t in taskset]
    scored: List[Tuple[float, str]] = []
    for index, task in enumerate(tasks):
        others = tasks[:index] + tasks[index + 1 :]
        scored.append((stability_slack(task, others, counter), task.name))
    scored.sort(key=lambda item: -item[0])
    return (
        {name: level + 1 for level, (_, name) in enumerate(scored)},
        None,
        counter.count,
        0,
    )


def _order_is_valid(order, counter: EvaluationCounter) -> bool:
    for position, task in enumerate(order):
        if not is_feasible(task, order[position + 1 :], counter):
            return False
    return True


def seed_exhaustive(taskset: TaskSet):
    counter = EvaluationCounter()
    tasks = [t.copy() for t in taskset]
    for order in itertools.permutations(tasks):
        if _order_is_valid(order, counter):
            priorities = {
                task.name: level + 1 for level, task in enumerate(order)
            }
            return priorities, True, counter.count, 0
    return None, False, counter.count, 0


def seed_count_valid_orders(taskset: TaskSet) -> int:
    counter = EvaluationCounter()
    tasks = [t.copy() for t in taskset]
    return sum(
        1
        for order in itertools.permutations(tasks)
        if _order_is_valid(order, counter)
    )


#: name -> (seed callable, engine entry point kwargs-compatible)
SEED_ALGORITHMS = {
    "rate_monotonic": seed_rate_monotonic,
    "slack_monotonic": seed_slack_monotonic,
    "audsley": seed_audsley,
    "unsafe_quadratic": seed_unsafe_quadratic,
    "backtracking": seed_backtracking,
    "exhaustive": seed_exhaustive,
}
