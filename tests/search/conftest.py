"""Fixtures for the search-engine tests."""

from __future__ import annotations

import pytest

from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet


@pytest.fixture
def easy_taskset():
    """Generously bounded set: any priority order is valid."""
    return TaskSet(
        [
            Task(name="a", period=4.0, wcet=0.4, bcet=0.2,
                 stability=LinearStabilityBound(a=1.0, b=100.0)),
            Task(name="b", period=8.0, wcet=0.8, bcet=0.4,
                 stability=LinearStabilityBound(a=1.0, b=100.0)),
            Task(name="c", period=16.0, wcet=1.6, bcet=0.8,
                 stability=LinearStabilityBound(a=1.0, b=100.0)),
        ]
    )


@pytest.fixture
def infeasible_taskset():
    """No priority order satisfies both stability bounds."""
    return TaskSet(
        [
            Task(name="x", period=4.0, wcet=2.0, bcet=2.0,
                 stability=LinearStabilityBound(a=1.0, b=2.5)),
            Task(name="y", period=4.0, wcet=2.0, bcet=2.0,
                 stability=LinearStabilityBound(a=1.0, b=2.5)),
        ]
    )
