"""Engine-level behaviour of the strategy suite."""

from __future__ import annotations

import pytest

from _population import random_taskset
from repro.api import analyze, assign
from repro.errors import ModelError
from repro.rta.taskset import Task, TaskSet
from repro.search import (
    STRATEGIES,
    SearchContext,
    run_strategy,
    strategy_names,
)


class TestRegistry:
    def test_all_algorithms_registered(self):
        assert strategy_names() == (
            "audsley",
            "backtracking",
            "exhaustive",
            "rate_monotonic",
            "slack_monotonic",
            "unsafe_quadratic",
        )

    def test_result_algorithm_matches_registry_key(self, easy_taskset):
        for name in strategy_names():
            assert run_strategy(name, easy_taskset).algorithm == name


class TestEngineBehaviour:
    def test_input_taskset_never_mutated(self, easy_taskset):
        context = SearchContext()
        for name in strategy_names():
            run_strategy(name, easy_taskset, context=context)
        assert all(t.priority is None for t in easy_taskset)

    def test_infeasible_instance_outcomes(self, infeasible_taskset):
        audsley = run_strategy("audsley", infeasible_taskset)
        assert audsley.priorities is None and audsley.evaluations == 2
        backtracking = run_strategy("backtracking", infeasible_taskset)
        assert backtracking.priorities is None
        unsafe = run_strategy("unsafe_quadratic", infeasible_taskset)
        assert unsafe.priorities is not None and unsafe.claims_valid is False
        exhaustive = run_strategy("exhaustive", infeasible_taskset)
        assert exhaustive.priorities is None

    def test_exhaustive_size_guard(self):
        tasks = [
            Task(name=f"t{i}", period=float(10 + i), wcet=0.1)
            for i in range(10)
        ]
        with pytest.raises(ModelError):
            run_strategy("exhaustive", TaskSet(tasks))

    def test_backtracking_budget(self, infeasible_taskset):
        result = run_strategy(
            "backtracking", infeasible_taskset, max_evaluations=1
        )
        assert result.priorities is None
        assert result.evaluations <= 3

    def test_succeeded_and_recomputations_properties(self, easy_taskset):
        context = SearchContext()
        first = run_strategy("backtracking", easy_taskset, context=context)
        second = run_strategy("backtracking", easy_taskset, context=context)
        assert first.succeeded and second.succeeded
        assert first.priorities == second.priorities
        assert second.cache_hits == second.evaluations
        assert second.recomputations == 0
        assert first.recomputations == first.evaluations

    def test_assignments_validate_through_facade(self):
        for n, index in ((4, 0), (5, 1), (6, 2)):
            taskset = random_taskset(n, index)
            context = SearchContext()
            for name in ("audsley", "backtracking"):
                result = run_strategy(name, taskset, context=context)
                if result.priorities is not None:
                    assert analyze(result.apply_to(taskset)).stable


class TestApiAssign:
    def test_assign_defaults_to_backtracking(self, easy_taskset):
        outcome = assign(easy_taskset, name="demo")
        assert outcome.algorithm == "backtracking"
        assert outcome.ok and outcome.report.stable
        assert outcome.system.priority_policy == "as_given"

    def test_assign_respects_system_policy(self, easy_taskset):
        from repro.api import ControlTaskSystem

        system = ControlTaskSystem(
            taskset=easy_taskset, name="s", priority_policy="audsley"
        )
        outcome = assign(system)
        assert outcome.algorithm == "audsley"
        assert system.assign().algorithm == "audsley"  # method front end

    def test_assign_failure_carries_no_report(self, infeasible_taskset):
        outcome = assign(infeasible_taskset, algorithm="backtracking")
        assert not outcome.assigned and not outcome.ok
        assert outcome.report is None and outcome.system is None
        payload = outcome.to_dict()
        assert payload["assigned"] is False and payload["report"] is None

    def test_assign_batch_matches_serial_and_parallel(self):
        from repro.api import assign_batch

        tasksets = [random_taskset(4, i) for i in range(3)]
        serial = assign_batch(tasksets, algorithm="backtracking", jobs=1)
        parallel = assign_batch(tasksets, algorithm="backtracking", jobs=2)
        assert [o.to_dict() for o in serial] == [
            o.to_dict() for o in parallel
        ]

    def test_unknown_algorithm_rejected(self, easy_taskset):
        with pytest.raises(ModelError):
            assign(easy_taskset, algorithm="quantum")

    def test_strategy_singletons_are_stateless_across_runs(self):
        taskset = random_taskset(5, 9)
        first = run_strategy("backtracking", taskset)
        second = run_strategy("backtracking", taskset)
        assert first.priorities == second.priorities
        assert first.evaluations == second.evaluations
        assert STRATEGIES["backtracking"].name == "backtracking"
