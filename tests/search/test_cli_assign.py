"""End-to-end CLI tests of ``python -m repro assign``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SYSTEM = {
    "name": "cli-demo",
    "tasks": [
        {"name": "a", "period": 4.0, "wcet": 0.4, "bcet": 0.2,
         "stability": {"a": 1.0, "b": 100.0}},
        {"name": "b", "period": 8.0, "wcet": 0.8, "bcet": 0.4,
         "stability": {"a": 1.0, "b": 100.0}},
    ],
}

INFEASIBLE = {
    "name": "cli-broken",
    "tasks": [
        {"name": "x", "period": 4.0, "wcet": 2.0, "bcet": 2.0,
         "stability": {"a": 1.0, "b": 2.5}},
        {"name": "y", "period": 4.0, "wcet": 2.0, "bcet": 2.0,
         "stability": {"a": 1.0, "b": 2.5}},
    ],
}


def _write(tmp_path, payload, name="model.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_assign_single_system(tmp_path, capsys):
    out = tmp_path / "outcome.json"
    code = main(["assign", _write(tmp_path, SYSTEM), "--out", str(out)])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "algorithm backtracking" in stdout
    payload = json.loads(out.read_text())
    assert payload["schema_version"] == 1
    assert payload["ok"] is True
    assert payload["assignment"]["algorithm"] == "backtracking"
    assert set(payload["assignment"]["priorities"]) == {"a", "b"}
    assert payload["report"]["stable"] is True


def test_assign_explicit_algorithm(tmp_path, capsys):
    code = main(
        ["assign", _write(tmp_path, SYSTEM), "--algorithm", "audsley"]
    )
    assert code == 0
    assert "algorithm audsley" in capsys.readouterr().out


def test_assign_batch_and_jobs(tmp_path, capsys):
    out = tmp_path / "batch.json"
    model = _write(tmp_path, {"systems": [SYSTEM, dict(SYSTEM, name="two")]})
    code = main(["assign", model, "--jobs", "2", "--out", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["n_systems"] == 2
    assert [o["name"] for o in payload["outcomes"]] == ["cli-demo", "two"]


def test_assign_single_entry_batch_keeps_envelope_shape(tmp_path, capsys):
    """A batch input gets the envelope even with one system (like analyze)."""
    out = tmp_path / "one.json"
    model = _write(tmp_path, {"systems": [SYSTEM]})
    assert main(["assign", model, "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["n_systems"] == 1
    assert "canonical_sha256" in payload
    assert [o["name"] for o in payload["outcomes"]] == ["cli-demo"]


def test_assign_infeasible_exits_one(tmp_path, capsys):
    code = main(["assign", _write(tmp_path, INFEASIBLE)])
    assert code == 1
    assert "no valid priority assignment" in capsys.readouterr().out


def test_assign_bad_file_exits_two(tmp_path, capsys):
    code = main(["assign", str(tmp_path / "missing.json")])
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


def test_assign_unknown_algorithm_exits_two(tmp_path, capsys):
    code = main(
        ["assign", _write(tmp_path, SYSTEM), "--algorithm", "quantum"]
    )
    assert code == 2
    assert "unknown assignment algorithm" in capsys.readouterr().err


@pytest.mark.sweep
def test_sweep_assign_artifact(tmp_path, capsys):
    out = tmp_path / "assign.json"
    code = main(
        [
            "sweep", "assign",
            "--benchmarks", "2",
            "--task-counts", "3",
            "--jobs", "1",
            "--out", str(out),
        ]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["name"] == "assign"
    assert len(payload["records"]) == 2
    assert "backtracking_priorities" in payload["records"][0]
