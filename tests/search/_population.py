"""Deterministic benchmark populations for the search-engine tests."""

from __future__ import annotations

import numpy as np

from repro.benchgen.taskgen import generate_control_taskset
from repro.rta.taskset import TaskSet


def random_taskset(n: int, index: int, seed: int = 20260729) -> TaskSet:
    """One UUniFast benchmark task set, deterministic in ``(seed, n, index)``."""
    rng = np.random.default_rng([seed, n, index])
    return generate_control_taskset(n, rng)
