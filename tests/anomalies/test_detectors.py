"""Tests of the anomaly detectors."""

from __future__ import annotations

import pytest

from repro.anomalies.detectors import (
    jitter_after_priority_raise,
    period_increase_anomalies,
    priority_raise_anomalies,
    wcet_decrease_anomalies,
)
from repro.anomalies.scenarios import priority_raise_anomaly_example
from repro.errors import ModelError
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet


@pytest.fixture
def anomaly_instance():
    return priority_raise_anomaly_example()


class TestPriorityRaiseDetector:
    def test_pinned_instance_detected(self, anomaly_instance):
        taskset, name = anomaly_instance
        events = priority_raise_anomalies(taskset)
        assert any(e.task_name == name for e in events)

    def test_pinned_instance_exact_numbers(self, anomaly_instance):
        taskset, name = anomaly_instance
        before, after = jitter_after_priority_raise(taskset, name)
        assert before.latency == pytest.approx(8.35)
        assert before.jitter == pytest.approx(2.24)
        assert after.latency == pytest.approx(6.49)
        assert after.jitter == pytest.approx(2.98)

    def test_pinned_instance_is_destabilising(self, anomaly_instance):
        taskset, name = anomaly_instance
        event = next(
            e for e in priority_raise_anomalies(taskset) if e.task_name == name
        )
        assert event.destabilising
        assert event.slack_before == pytest.approx(0.1028, abs=1e-9)
        assert event.slack_after == pytest.approx(-0.0944, abs=1e-9)

    def test_monotone_instance_has_no_anomaly(self, three_task_set):
        # Constant-rate trio: raising priorities behaves intuitively.
        assert priority_raise_anomalies(three_task_set) == []

    def test_raising_top_task_rejected(self, three_task_set):
        with pytest.raises(ModelError):
            jitter_after_priority_raise(three_task_set, "hi")


class TestOtherDetectors:
    def test_wcet_decrease_on_plain_set_is_quiet(self, three_task_set):
        assert wcet_decrease_anomalies(three_task_set) == []

    def test_period_increase_on_plain_set_is_quiet(self, three_task_set):
        assert period_increase_anomalies(three_task_set, stretch=1.05) == []

    def test_wcet_decrease_validates_shrink_factor(self, three_task_set):
        with pytest.raises(ModelError):
            wcet_decrease_anomalies(three_task_set, shrink=1.5)

    def test_period_increase_validates_stretch(self, three_task_set):
        with pytest.raises(ModelError):
            period_increase_anomalies(three_task_set, stretch=0.9)

    def test_anomaly_event_fields(self, anomaly_instance):
        taskset, name = anomaly_instance
        event = priority_raise_anomalies(taskset)[0]
        assert event.kind == "priority_raise"
        assert event.jitter_increase > 0
        assert "swap above" in event.change
