"""Tests of the Monte-Carlo anomaly census."""

from __future__ import annotations

import pytest

from repro.anomalies.census import AnomalyCensus, run_anomaly_census
from repro.benchgen.taskgen import BenchmarkConfig

pytestmark = pytest.mark.slow


class TestCensusAccounting:
    def test_record_and_rates(self):
        census = AnomalyCensus()
        census.record("priority_raise", checked=10, found=[])
        assert census.anomaly_rate("priority_raise") == 0.0
        assert census.destabilising_rate("priority_raise") == 0.0

    def test_unknown_kind_rate_is_zero(self):
        assert AnomalyCensus().anomaly_rate("nope") == 0.0


class TestCensusRun:
    @pytest.fixture(scope="class")
    def census(self):
        return run_anomaly_census(4, benchmarks=40, seed=5)

    def test_counts_are_consistent(self, census):
        assert census.benchmarks == 40
        assert 0 <= census.feasible <= 40
        for kind in ("priority_raise", "wcet_decrease", "period_increase"):
            assert census.anomalous_moves[kind] <= census.moves_checked[kind]
            assert census.destabilising_moves[kind] <= census.anomalous_moves[kind]

    def test_moves_scale_with_feasible_benchmarks(self, census):
        # 3 one-level raises per feasible 4-task benchmark.
        assert census.moves_checked["priority_raise"] == 3 * census.feasible
        # 6 ordered interferer/observed pairs per benchmark.
        assert census.moves_checked["wcet_decrease"] == 6 * census.feasible

    def test_anomalies_are_rare(self, census):
        # The paper's thesis, quantified: on valid random designs the
        # anomalous-move rate is at most a few percent.
        for kind in ("priority_raise", "wcet_decrease", "period_increase"):
            assert census.anomaly_rate(kind) < 0.2

    def test_events_dropped_unless_requested(self, census):
        assert census.events == []
