"""Tests of the anomaly scenario construction/search."""

from __future__ import annotations

import pytest

from repro.anomalies.detectors import priority_raise_anomalies
from repro.anomalies.scenarios import (
    FIXTURE_SEARCH_SEED,
    FIXTURE_SEARCH_TRIALS,
    find_priority_raise_anomaly,
    priority_raise_anomaly_example,
)
from repro.assignment.validate import validate_assignment


class TestPinnedExample:
    def test_returns_taskset_and_name(self):
        taskset, name = priority_raise_anomaly_example()
        assert taskset.by_name(name).stability is not None
        assert len(taskset) == 4

    def test_original_assignment_is_valid(self):
        # Before the raise, the design is stable -- the anomaly is that an
        # apparent improvement breaks a *working* design.
        taskset, _ = priority_raise_anomaly_example()
        assert validate_assignment(taskset).valid

    def test_anomaly_survives_detector_roundtrip(self):
        taskset, name = priority_raise_anomaly_example()
        events = priority_raise_anomalies(taskset)
        mine = [e for e in events if e.task_name == name]
        assert len(mine) == 1
        assert mine[0].destabilising


class TestProvenance:
    """The docstring's provenance claim, enforced: the pinned seeded search
    reproduces the fixture parameter-for-parameter."""

    def test_seeded_search_reproduces_pinned_fixture(self):
        found = find_priority_raise_anomaly(
            trials=FIXTURE_SEARCH_TRIALS,
            seed=FIXTURE_SEARCH_SEED,
            fixture_shaped=True,
        )
        fixture, name = priority_raise_anomaly_example()
        assert found is not None
        assert [
            (t.name, t.period, t.wcet, t.bcet, t.priority) for t in found
        ] == [(t.name, t.period, t.wcet, t.bcet, t.priority) for t in fixture]
        assert found.by_name(name).stability == fixture.by_name(name).stability

    def test_fixture_shaped_hits_are_destabilising_and_valid(self):
        found = find_priority_raise_anomaly(
            trials=FIXTURE_SEARCH_TRIALS,
            seed=FIXTURE_SEARCH_SEED,
            fixture_shaped=True,
        )
        assert validate_assignment(found).valid
        events = priority_raise_anomalies(found)
        assert any(e.task_name == "ctl" and e.destabilising for e in events)


@pytest.mark.slow
class TestSearch:
    def test_search_finds_an_instance(self):
        found = find_priority_raise_anomaly(trials=30_000, seed=3)
        assert found is not None
        assert priority_raise_anomalies(found) != []

    def test_search_is_deterministic(self):
        a = find_priority_raise_anomaly(trials=30_000, seed=3)
        b = find_priority_raise_anomaly(trials=30_000, seed=3)
        assert a is not None and b is not None
        assert [t.name for t in a] == [t.name for t in b]
        assert [t.wcet for t in a] == [t.wcet for t in b]

    def test_search_can_fail_gracefully(self):
        assert find_priority_raise_anomaly(trials=1, seed=0) is None
