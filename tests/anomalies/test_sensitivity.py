"""Tests of the sensitivity analysis (scaling margins, level profiles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anomalies.scenarios import priority_raise_anomaly_example
from repro.anomalies.sensitivity import (
    priority_level_margin,
    sensitivity_report,
    wcet_scaling_margin,
)
from repro.errors import ModelError
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet


@pytest.fixture
def working_set():
    return TaskSet(
        [
            Task(name="hi", period=4.0, wcet=1.0, bcet=0.5, priority=2,
                 stability=LinearStabilityBound(a=1.0, b=2.5)),
            Task(name="lo", period=12.0, wcet=2.0, bcet=1.0, priority=1,
                 stability=LinearStabilityBound(a=1.0, b=9.0)),
        ]
    )


class TestWcetScalingMargin:
    def test_margin_exceeds_one_for_working_set(self, working_set):
        margin = wcet_scaling_margin(working_set, "hi")
        assert margin.factor > 1.0

    def test_scaled_at_margin_is_valid_and_past_is_not(self, working_set):
        from repro.anomalies.sensitivity import (
            _first_violation,
            _taskset_with_scaled_task,
        )

        margin = wcet_scaling_margin(working_set, "hi", tolerance=1e-5)
        at = _taskset_with_scaled_task(working_set, "hi", margin.factor)
        assert _first_violation(at) is None
        past = _taskset_with_scaled_task(working_set, "hi", margin.factor * 1.01)
        assert past is None or _first_violation(past) is not None

    def test_binding_task_reported(self, working_set):
        margin = wcet_scaling_margin(working_set, "hi", tolerance=1e-5)
        assert margin.binding_task in {"hi", "lo"}

    def test_bisection_is_cheap(self, working_set):
        # log2(bracket / tolerance) evaluations, not a linear scan.
        margin = wcet_scaling_margin(working_set, "hi", tolerance=1e-4)
        assert margin.evaluations < 40

    def test_invalid_design_rejected(self, working_set):
        broken = working_set.with_priorities({"hi": 1, "lo": 2})
        with pytest.raises(ModelError):
            wcet_scaling_margin(broken, "hi")

    def test_unknown_task_rejected(self, working_set):
        with pytest.raises(ModelError):
            wcet_scaling_margin(working_set, "nope")

    def test_unconstrained_task_hits_cap(self):
        ts = TaskSet(
            [Task(name="solo", period=10.0, wcet=0.01, bcet=0.01, priority=1)]
        )
        margin = wcet_scaling_margin(ts, "solo", max_factor=16.0)
        # Only its own period caps the growth; bracket stops at the cap.
        assert margin.factor >= 16.0 or margin.binding_task == "solo"

    def test_report_covers_all_tasks(self, working_set):
        report = sensitivity_report(working_set)
        assert set(report) == {"hi", "lo"}
        assert all(m.factor >= 1.0 for m in report.values())


class TestPriorityLevelProfile:
    def test_profile_shape(self, working_set):
        profile = priority_level_margin(working_set, "lo")
        assert profile.levels == (1, 2)
        assert len(profile.slacks) == 2

    def test_monotone_for_plain_sets(self, working_set):
        # Both tasks have constant-ish interfaces here: higher level never
        # hurts, so the profile is monotone.
        profile = priority_level_margin(working_set, "lo")
        assert profile.is_monotone

    def test_anomalous_instance_is_non_monotone(self):
        """On the pinned anomaly instance the slack profile of the control
        task DECREASES when moving up a level -- bisection over levels
        would be unsound, which is the paper's design-complexity point."""
        taskset, victim = priority_raise_anomaly_example()
        profile = priority_level_margin(taskset, victim)
        assert not profile.is_monotone
        # Level 1 (current, stable) beats level 2 (the 'improvement').
        assert profile.slacks[0] > profile.slacks[1]

    def test_best_level_maximises_slack(self, working_set):
        profile = priority_level_margin(working_set, "hi")
        best_index = profile.levels.index(profile.best_level)
        assert profile.slacks[best_index] == max(profile.slacks)


@pytest.mark.sweep
class TestParallelReport:
    def test_jobs_match_serial(self, working_set):
        serial = sensitivity_report(working_set, jobs=1)
        parallel = sensitivity_report(working_set, jobs=2)
        assert set(serial) == set(parallel)
        for name in serial:
            assert parallel[name].factor == serial[name].factor
            assert parallel[name].evaluations == serial[name].evaluations
            assert parallel[name].binding_task == serial[name].binding_task
