"""Tests of the latency/jitter interface (eq. (2)) and validity checks."""

from __future__ import annotations

import pytest

from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.interface import (
    latency_jitter,
    response_time_interface,
    task_is_stable,
    taskset_is_schedulable,
    taskset_is_stable,
)
from repro.rta.taskset import Task, TaskSet


class TestLatencyJitter:
    def test_definitions_match_eq2(self, three_task_set):
        lo = three_task_set.by_name("lo")
        times = latency_jitter(lo, three_task_set.higher_priority(lo))
        assert times.latency == pytest.approx(times.best)
        assert times.jitter == pytest.approx(times.worst - times.best)

    def test_highest_priority_task_has_pure_execution_interface(self, three_task_set):
        hi = three_task_set.by_name("hi")
        times = latency_jitter(hi, three_task_set.higher_priority(hi))
        assert times.best == pytest.approx(hi.bcet)
        assert times.worst == pytest.approx(hi.wcet)
        assert times.jitter == pytest.approx(hi.wcet - hi.bcet)

    def test_deadline_limit_defaults_to_period(self):
        hi = Task(name="hi", period=2.0, wcet=1.5)
        lo = Task(name="lo", period=10.0, wcet=4.0)
        times = latency_jitter(lo, [hi])
        assert times.worst == float("inf")
        assert not times.finite

    def test_custom_deadline(self):
        hi = Task(name="hi", period=2.0, wcet=1.5)
        lo = Task(name="lo", period=10.0, wcet=4.0)
        times = latency_jitter(lo, [hi], deadline=100.0)
        assert times.finite


class TestInterfaceOverTaskSet:
    def test_all_tasks_reported(self, three_task_set):
        interface = response_time_interface(three_task_set)
        assert set(interface) == {"hi", "me", "lo"}

    def test_schedulable_verdict(self, three_task_set):
        assert taskset_is_schedulable(three_task_set)

    def test_unschedulable_set_detected(self):
        ts = TaskSet(
            [
                Task(name="a", period=2.0, wcet=1.6, priority=2),
                Task(name="b", period=4.0, wcet=1.0, priority=1),
            ]
        )
        assert not taskset_is_schedulable(ts)


class TestStabilityChecks:
    def test_task_without_bound_only_needs_deadline(self):
        task = Task(name="t", period=5.0, wcet=1.0)
        assert task_is_stable(task, [])

    def test_stability_bound_checked_against_interface(self):
        hi = Task(name="hi", period=4.0, wcet=1.0, bcet=0.5)
        # Interface of ctl: R^b = 2 (no best-case preemption), R^w = 3
        # -> L = 2, J = 1, so L + 2J = 4.
        ctl_ok = Task(
            name="ctl",
            period=10.0,
            wcet=2.0,
            bcet=2.0,
            stability=LinearStabilityBound(a=2.0, b=4.0),
        )
        assert task_is_stable(ctl_ok, [hi])
        ctl_bad = Task(
            name="ctl",
            period=10.0,
            wcet=2.0,
            bcet=2.0,
            stability=LinearStabilityBound(a=2.0, b=3.9),
        )
        assert not task_is_stable(ctl_bad, [hi])

    def test_deadline_miss_is_always_unstable(self):
        hi = Task(name="hi", period=2.0, wcet=1.9)
        ctl = Task(
            name="ctl",
            period=4.0,
            wcet=1.0,
            stability=LinearStabilityBound(a=1.0, b=1e9),
        )
        assert not task_is_stable(ctl, [hi])

    def test_taskset_is_stable(self):
        ts = TaskSet(
            [
                Task(name="hi", period=4.0, wcet=1.0, bcet=0.5, priority=2),
                Task(
                    name="ctl",
                    period=10.0,
                    wcet=2.0,
                    bcet=2.0,
                    priority=1,
                    stability=LinearStabilityBound(a=2.0, b=4.0),
                ),
            ]
        )
        assert taskset_is_stable(ts)
