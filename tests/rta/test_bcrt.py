"""Tests of the exact best-case response-time analysis (eq. (4))."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rta.bcrt import best_case_response_time
from repro.rta.taskset import Task
from repro.rta.wcrt import worst_case_response_time


def _task(name, period, wcet, bcet=None):
    return Task(name=name, period=period, wcet=wcet, bcet=bcet)


class TestBcrt:
    def test_no_interference_gives_bcet(self):
        task = _task("t", 10.0, 3.0, 2.0)
        assert best_case_response_time(task, []) == pytest.approx(2.0)

    def test_short_task_sees_no_best_case_interference(self):
        # A job finishing within every interferer's first period sees, in
        # the best case (releases just after it), zero preemptions.
        hi = _task("hi", 4.0, 1.0, 1.0)
        task = _task("t", 10.0, 2.0, 2.0)
        assert best_case_response_time(task, [hi]) == pytest.approx(2.0)

    def test_redell_sanfridson_example_shape(self):
        # Long task spanning several interferer periods: (ceil(R/T)-1)
        # preemptions in the best case.
        hi = _task("hi", 2.0, 0.5, 0.5)
        task = _task("t", 50.0, 6.0, 6.0)
        # R = 6 + (ceil(R/2)-1)*0.5: try R = 8: 6 + 3*0.5 = 7.5;
        # R = 7.5: 6 + (4-1)*0.5 = 7.5. Fixed point 7.5.
        assert best_case_response_time(task, [hi]) == pytest.approx(7.5)

    def test_bcrt_never_exceeds_wcrt(self):
        hi = _task("hi", 3.0, 1.0, 0.4)
        me = _task("me", 7.0, 2.0, 1.0)
        task = _task("t", 40.0, 5.0, 3.0)
        best = best_case_response_time(task, [hi, me])
        worst = worst_case_response_time(task, [hi, me], limit=1e9)
        assert best <= worst

    def test_saturated_best_case_returns_inf(self):
        hi = _task("hi", 1.0, 1.0, 1.0)
        task = _task("t", 100.0, 1.0)
        assert best_case_response_time(task, [hi]) == float("inf")

    def test_uses_bcets_not_wcets(self):
        # Same structure, tighter bcets -> smaller best case.
        hi_tight = _task("hi", 2.0, 1.0, 0.1)
        hi_loose = _task("hi", 2.0, 1.0, 1.0)
        task = _task("t", 50.0, 6.0, 6.0)
        tight = best_case_response_time(task, [hi_tight])
        loose = best_case_response_time(task, [hi_loose])
        assert tight < loose

    @given(
        st.floats(0.05, 0.4),
        st.floats(0.05, 0.4),
        st.floats(0.1, 0.99),
    )
    def test_bcrt_leq_wcrt_property(self, u1, u2, bcet_frac):
        hi1 = _task("h1", 3.0, 3.0 * u1, 3.0 * u1 * bcet_frac)
        hi2 = _task("h2", 11.0, 11.0 * u2, 11.0 * u2 * bcet_frac)
        task = _task("t", 60.0, 8.0, 8.0 * bcet_frac)
        best = best_case_response_time(task, [hi1, hi2])
        worst = worst_case_response_time(task, [hi1, hi2], limit=1e9)
        assert best <= worst + 1e-9

    @given(st.floats(0.05, 0.45))
    def test_bcrt_at_least_bcet(self, u_hi):
        hi = _task("hi", 5.0, 5.0 * u_hi, 5.0 * u_hi / 2)
        task = _task("t", 30.0, 4.0, 2.0)
        assert best_case_response_time(task, [hi]) >= 2.0 - 1e-12
