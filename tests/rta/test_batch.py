"""Equivalence tests of the batched RTA fast path.

The contract: :mod:`repro.rta.batch` must agree with the per-task scalar
analyses (:func:`worst_case_response_time` / :func:`best_case_response_time`
via :func:`latency_jitter`) on every task of every task set -- same
infinities, same guard decisions, values equal to floating-point summation
order (the two paths sum interference in different task orders).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.assignment.unsafe_quadratic import assign_unsafe_quadratic
from repro.assignment.validate import validate_assignment
from repro.benchgen.uunifast import uunifast
from repro.rta.batch import (
    analyze_taskset,
    batch_response_times,
    batch_validate,
    guarded_ceil_array,
)
from repro.rta.interface import latency_jitter
from repro.rta.taskset import Task, TaskSet
from repro.rta.wcrt import guarded_ceil

#: Agreement tolerance: the scalar and batched paths may differ by float
#: summation order only.
_RTOL = 1e-9


def _random_uunifast_taskset(rng: np.random.Generator, n: int) -> TaskSet:
    """A priority-assigned UUniFast task set with random rational periods."""
    utilization = float(rng.uniform(0.3, 0.95))
    shares = uunifast(n, utilization, rng)
    periods = rng.choice([1.0, 2.0, 2.5, 4.0, 5.0, 8.0, 10.0, 20.0], size=n)
    tasks = []
    for k, (share, period) in enumerate(zip(shares, periods)):
        wcet = min(max(share * period, 1e-6), period)
        bcet = max(wcet * float(rng.uniform(0.2, 1.0)), 1e-9)
        tasks.append(
            Task(
                name=f"t{k}",
                period=float(period),
                wcet=float(wcet),
                bcet=float(bcet),
                priority=n - k,
            )
        )
    return TaskSet(tasks)


class TestGuardedCeilArray:
    def test_matches_scalar_on_boundaries(self):
        # Quotients within/outside the relative guard of an integer,
        # including the exact boundary cases the scalar guard defines.
        quotients = np.array(
            [
                1.0,
                2.0 - 1e-12,
                2.0 + 1e-12,
                2.0 - 1e-6,
                2.0 + 1e-6,
                0.5,
                3.999999999,
                4.000000001,
                1e6 * (1.0 + 1e-10),
                7.3,
            ]
        )
        batched = guarded_ceil_array(quotients)
        scalars = [guarded_ceil(float(q)) for q in quotients]
        assert batched.tolist() == scalars

    def test_guard_is_relative(self):
        # 1e9 + 0.4 is within 1e-9 *relative* of 1e9: rounds, not ceils.
        assert guarded_ceil_array(np.array([1e9 + 0.4]))[0] == 1e9
        assert guarded_ceil(1e9 + 0.4) == 1e9


class TestEquivalence:
    def test_agrees_on_500_random_uunifast_tasksets(self):
        """The ISSUE-level contract, in one deterministic sweep."""
        rng = np.random.default_rng(20170327)
        checked_tasks = 0
        infinite_seen = 0
        for case in range(500):
            n = int(rng.integers(2, 12))
            taskset = _random_uunifast_taskset(rng, n)
            batched = analyze_taskset(taskset)
            for task in taskset:
                reference = latency_jitter(task, taskset.higher_priority(task))
                fast = batched.times[task.name]
                checked_tasks += 1
                if math.isinf(reference.worst):
                    infinite_seen += 1
                    assert math.isinf(fast.worst), task
                else:
                    assert fast.worst == pytest.approx(
                        reference.worst, rel=_RTOL
                    )
                if math.isinf(reference.best):
                    assert math.isinf(fast.best)
                else:
                    assert fast.best == pytest.approx(
                        reference.best, rel=_RTOL
                    )
        assert checked_tasks > 1000
        # The drawn utilisations must actually exercise the inf branch.
        assert infinite_seen > 0

    def test_integer_period_results_are_exact(self):
        """On integer-harmonic sets the fixed points are exact integers."""
        taskset = TaskSet(
            [
                Task(name="hi", period=4.0, wcet=1.0, bcet=0.5, priority=3),
                Task(name="me", period=8.0, wcet=2.0, bcet=1.0, priority=2),
                Task(name="lo", period=16.0, wcet=3.0, bcet=2.0, priority=1),
            ]
        )
        batched = analyze_taskset(taskset)
        for task in taskset:
            reference = latency_jitter(task, taskset.higher_priority(task))
            assert batched.times[task.name].worst == reference.worst
            assert batched.times[task.name].best == reference.best

    def test_utilisation_screen_boundary(self):
        """hp utilisation exactly 1: scalar (finite limit) and batch agree."""
        taskset = TaskSet(
            [
                Task(name="hog", period=2.0, wcet=2.0, priority=2),
                Task(name="starved", period=10.0, wcet=1.0, priority=1),
            ]
        )
        batched = analyze_taskset(taskset)
        starved = taskset.by_name("starved")
        reference = latency_jitter(starved, taskset.higher_priority(starved))
        assert math.isinf(reference.worst)
        assert math.isinf(batched.times["starved"].worst)
        assert not batched.deadlines_met


class TestBatchValidate:
    def test_matches_validate_assignment_on_benchmarks(self):
        from repro.benchgen.taskgen import generate_control_taskset

        tasksets = []
        for n in (4, 8):
            for index in range(25):
                rng = np.random.default_rng([5, n, index])
                taskset = generate_control_taskset(n, rng)
                assigned = assign_unsafe_quadratic(taskset).apply_to(taskset)
                tasksets.append(assigned)
        reference = [validate_assignment(ts).valid for ts in tasksets]
        assert batch_validate(tasksets) == reference

    def test_violating_names_match_report(self):
        taskset = TaskSet(
            [
                Task(name="hog", period=2.0, wcet=2.0, priority=2),
                Task(name="starved", period=10.0, wcet=1.0, priority=1),
            ]
        )
        analysis = analyze_taskset(taskset)
        report = validate_assignment(taskset)
        assert analysis.stable == report.valid
        assert analysis.violating == report.violating_tasks

    def test_batch_response_times_shape(self):
        taskset = TaskSet(
            [
                Task(name="a", period=4.0, wcet=1.0, priority=2),
                Task(name="b", period=8.0, wcet=2.0, priority=1),
            ]
        )
        times = batch_response_times([taskset, taskset])
        assert len(times) == 2
        assert set(times[0]) == {"a", "b"}

    def test_requires_distinct_priorities(self):
        from repro.errors import ModelError

        taskset = TaskSet(
            [
                Task(name="a", period=4.0, wcet=1.0),
                Task(name="b", period=8.0, wcet=2.0),
            ]
        )
        with pytest.raises(ModelError):
            analyze_taskset(taskset)
