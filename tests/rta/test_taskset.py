"""Tests of the task model and task-set container."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet


class TestTask:
    def test_bcet_defaults_to_wcet(self):
        task = Task(name="t", period=1.0, wcet=0.2)
        assert task.bcet == pytest.approx(0.2)

    def test_utilizations(self):
        task = Task(name="t", period=2.0, wcet=0.5, bcet=0.25)
        assert task.utilization == pytest.approx(0.25)
        assert task.best_case_utilization == pytest.approx(0.125)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ModelError):
            Task(name="t", period=0.0, wcet=0.1)

    def test_rejects_bcet_above_wcet(self):
        with pytest.raises(ModelError):
            Task(name="t", period=1.0, wcet=0.1, bcet=0.2)

    def test_rejects_wcet_above_period(self):
        with pytest.raises(ModelError):
            Task(name="t", period=1.0, wcet=1.5)

    def test_with_priority_is_a_copy(self):
        task = Task(name="t", period=1.0, wcet=0.1)
        copy = task.with_priority(5)
        assert copy.priority == 5
        assert task.priority is None

    def test_stability_bound_attached(self):
        bound = LinearStabilityBound(a=1.0, b=0.5)
        task = Task(name="t", period=1.0, wcet=0.1, stability=bound)
        assert task.stability.is_stable(0.1, 0.1)


class TestTaskSet:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            TaskSet([
                Task(name="a", period=1.0, wcet=0.1),
                Task(name="a", period=2.0, wcet=0.1),
            ])

    def test_by_name(self, three_task_set):
        assert three_task_set.by_name("me").period == pytest.approx(8.0)
        with pytest.raises(ModelError):
            three_task_set.by_name("nobody")

    def test_higher_priority_follows_paper_convention(self, three_task_set):
        # rho_i > rho_j means tau_i has higher priority.
        lo = three_task_set.by_name("lo")
        names = {t.name for t in three_task_set.higher_priority(lo)}
        assert names == {"hi", "me"}
        hi = three_task_set.by_name("hi")
        assert three_task_set.higher_priority(hi) == ()

    def test_sorted_by_priority(self, three_task_set):
        ordered = three_task_set.sorted_by_priority()
        assert [t.name for t in ordered] == ["hi", "me", "lo"]

    def test_with_priorities_copy(self, three_task_set):
        remapped = three_task_set.with_priorities({"hi": 1, "me": 2, "lo": 3})
        assert remapped.by_name("hi").priority == 1
        assert three_task_set.by_name("hi").priority == 3  # original intact

    def test_with_priorities_requires_all_names(self, three_task_set):
        with pytest.raises(ModelError):
            three_task_set.with_priorities({"hi": 1})

    def test_check_distinct_priorities(self):
        clashing = TaskSet([
            Task(name="a", period=1.0, wcet=0.1, priority=1),
            Task(name="b", period=2.0, wcet=0.1, priority=1),
        ])
        with pytest.raises(ModelError):
            clashing.check_distinct_priorities()

    def test_utilization_sum(self, three_task_set):
        expected = 1.0 / 4 + 2.0 / 8 + 3.0 / 16
        assert three_task_set.utilization == pytest.approx(expected)

    def test_hyperperiod_integer_periods(self, three_task_set):
        assert three_task_set.hyperperiod() == pytest.approx(16.0)

    def test_hyperperiod_fractional_periods(self):
        ts = TaskSet([
            Task(name="a", period=0.004, wcet=0.001),
            Task(name="b", period=0.006, wcet=0.001),
        ])
        assert ts.hyperperiod() == pytest.approx(0.012)

    def test_copy_is_deep_for_priorities(self, three_task_set):
        clone = three_task_set.copy()
        clone.by_name("hi").priority = 99
        assert three_task_set.by_name("hi").priority == 3
