"""Tests of the exact worst-case response-time analysis (eq. (3))."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.rta.taskset import Task
from repro.rta.wcrt import guarded_ceil, worst_case_response_time


def _task(name, period, wcet, bcet=None):
    return Task(name=name, period=period, wcet=wcet, bcet=bcet)


class TestGuardedCeil:
    def test_plain_values(self):
        assert guarded_ceil(1.2) == 2
        assert guarded_ceil(3.0) == 3
        assert guarded_ceil(0.0) == 0

    def test_boundary_noise_is_absorbed(self):
        assert guarded_ceil(2.0 + 1e-13) == 2
        assert guarded_ceil(2.0 - 1e-13) == 2

    def test_real_excess_still_ceils(self):
        assert guarded_ceil(2.0 + 1e-6) == 3


class TestWcrt:
    def test_no_interference(self):
        task = _task("t", 10.0, 3.0)
        assert worst_case_response_time(task, []) == pytest.approx(3.0)

    def test_textbook_example(self):
        # Classic: C=(1,2,3), T=(4,8,16) -> R3 = 3 + 2*1 + 1*2... iterate.
        hi = _task("hi", 4.0, 1.0)
        me = _task("me", 8.0, 2.0)
        lo = _task("lo", 16.0, 3.0)
        assert worst_case_response_time(me, [hi]) == pytest.approx(3.0)
        # lo: R = 3 + ceil(R/4)*1 + ceil(R/8)*2; fixed point R = 8... check:
        # R=8: 3 + 2*1 + 1*2 = 7; R=7: 3+2+2=7. Fixed point 7.
        assert worst_case_response_time(lo, [hi, me]) == pytest.approx(7.0)

    def test_exceeds_limit_gives_inf(self):
        hi = _task("hi", 2.0, 1.9)
        lo = _task("lo", 100.0, 10.0)
        assert worst_case_response_time(lo, [hi], limit=100.0) == float("inf")

    def test_saturated_interference_without_limit_raises(self):
        hi = _task("hi", 1.0, 1.0)
        lo = _task("lo", 100.0, 1.0)
        with pytest.raises(ScheduleError):
            worst_case_response_time(lo, [hi])

    def test_exact_boundary_fit(self):
        # Interferer consumes exactly the first half of each period.
        hi = _task("hi", 2.0, 1.0)
        lo = _task("lo", 8.0, 2.0)
        # R = 2 + ceil(R/2)*1: R=4: 2+2=4. Exact fixed point at 4.
        assert worst_case_response_time(lo, [hi]) == pytest.approx(4.0)

    @given(
        st.floats(0.1, 5.0),
        st.floats(0.01, 0.9),
        st.floats(0.01, 0.9),
    )
    def test_monotone_in_own_wcet(self, period_scale, u_hi, frac):
        # WCRT is monotone: larger own WCET, larger response time.
        hi = _task("hi", 2.0 * period_scale, u_hi * 2.0 * period_scale * 0.4)
        small = _task("s", 20.0 * period_scale, frac * period_scale)
        large = _task(
            "l", 20.0 * period_scale, min(frac * period_scale * 1.5, 20.0 * period_scale)
        )
        r_small = worst_case_response_time(small, [hi], limit=1e9)
        r_large = worst_case_response_time(large, [hi], limit=1e9)
        assert r_large >= r_small - 1e-9

    @given(st.floats(0.05, 0.45), st.floats(0.05, 0.45))
    def test_adding_interferer_never_helps(self, u1, u2):
        # WCRT monotonicity in the hp-set (this property DOES hold; the
        # paper's anomalies live in the jitter, not in R^w alone).
        hi1 = _task("h1", 3.0, 3.0 * u1)
        hi2 = _task("h2", 7.0, 7.0 * u2)
        task = _task("t", 50.0, 2.0)
        alone = worst_case_response_time(task, [hi1], limit=1e9)
        both = worst_case_response_time(task, [hi1, hi2], limit=1e9)
        assert both >= alone - 1e-9
