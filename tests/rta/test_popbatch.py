"""Equivalence tests of the population kernel tier (RTA half).

The contract under test is *bit-identity*: for any population,
:func:`repro.rta.popbatch.analyze_population` must return exactly the
floats of the serial ``[analyze_taskset(ts) for ts in tasksets]`` loop,
and :func:`repro.rta.popbatch.evaluate_problems` exactly those of
per-candidate :func:`repro.memo.kernels.evaluate_candidate` calls --
including infinities, verdicts, and the position of the first
:class:`~repro.errors.ScheduleError`.  Equality below is ``==`` on
floats, never ``approx``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen.uunifast import uunifast
from repro.errors import ScheduleError
from repro.memo.kernels import evaluate_candidate, make_record
from repro.rta.batch import analyze_taskset
from repro.rta.popbatch import (
    MIN_POPULATION,
    MIN_PROBLEM_POPULATION,
    analyze_population,
    evaluate_problems,
)
from repro.rta.taskset import Task, TaskSet


def _random_taskset(rng: np.random.Generator, n: int, *, utilization=None) -> TaskSet:
    """A priority-assigned UUniFast task set with random rational periods."""
    if utilization is None:
        utilization = float(rng.uniform(0.3, 0.95))
    shares = uunifast(n, utilization, rng)
    periods = rng.choice([1.0, 2.0, 2.5, 4.0, 5.0, 8.0, 10.0, 20.0], size=n)
    tasks = []
    for k, (share, period) in enumerate(zip(shares, periods)):
        wcet = min(max(share * period, 1e-6), period)
        bcet = max(wcet * float(rng.uniform(0.2, 1.0)), 1e-9)
        tasks.append(
            Task(
                name=f"t{k}",
                period=float(period),
                wcet=float(wcet),
                bcet=float(bcet),
                priority=n - k,
            )
        )
    return TaskSet(tasks)


def _assert_identical(population, scalar):
    """Bitwise comparison of analysis lists (== on every float)."""
    assert len(population) == len(scalar)
    for got, want in zip(population, scalar):
        assert got.deadlines_met == want.deadlines_met
        assert got.stable == want.stable
        assert got.violating == want.violating
        assert set(got.times) == set(want.times)
        for name, interface in want.times.items():
            assert got.times[name].best == interface.best
            assert got.times[name].worst == interface.worst


class TestAnalyzePopulationEquivalence:
    @settings(max_examples=25)
    @given(
        seed=st.integers(0, 2**32 - 1),
        counts=st.lists(st.integers(1, 16), min_size=1, max_size=24),
    )
    def test_mixed_population_matches_scalar_loop(self, seed, counts):
        # Mixed task counts 1-16: stacked groups, singleton groups, and
        # the within-set fallback for tiny groups all in one population.
        rng = np.random.default_rng(seed)
        tasksets = [_random_taskset(rng, n) for n in counts]
        scalar = [analyze_taskset(ts) for ts in tasksets]
        population = analyze_population(tasksets, population_kernel=True)
        _assert_identical(population, scalar)

    @settings(max_examples=10)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_single_task_sets(self, seed):
        # Degenerate n=1 populations: no interference at all.
        rng = np.random.default_rng(seed)
        tasksets = [_random_taskset(rng, 1) for _ in range(MIN_POPULATION + 4)]
        _assert_identical(
            analyze_population(tasksets, population_kernel=True),
            [analyze_taskset(ts) for ts in tasksets],
        )

    @settings(max_examples=10)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_overloaded_sets_keep_exact_infinities(self, seed):
        # Utilisation near/above 1: deadline misses (inf WCRT) and slow
        # fixed points that trip the straggler fallback.
        rng = np.random.default_rng(seed)
        tasksets = [
            _random_taskset(rng, int(rng.integers(2, 9)), utilization=u)
            for u in rng.uniform(0.97, 1.3, size=MIN_POPULATION + 4)
        ]
        _assert_identical(
            analyze_population(tasksets, population_kernel=True),
            [analyze_taskset(ts) for ts in tasksets],
        )

    def test_escape_hatch_forces_batch_tier(self, rng):
        tasksets = [_random_taskset(rng, 6) for _ in range(MIN_POPULATION + 2)]
        _assert_identical(
            analyze_population(tasksets, population_kernel="off"),
            [analyze_taskset(ts) for ts in tasksets],
        )

    def test_small_population_runs_batch_tier(self, rng):
        tasksets = [_random_taskset(rng, 4) for _ in range(MIN_POPULATION - 1)]
        _assert_identical(
            analyze_population(tasksets),
            [analyze_taskset(ts) for ts in tasksets],
        )

    def test_empty_population(self):
        assert analyze_population([]) == []


def _record_problems(rng: np.random.Generator, count: int):
    """Random candidate problems over one interned record pool."""
    pool = []
    for i in range(12):
        period = float(rng.choice([1.0, 2.0, 2.5, 4.0, 5.0, 10.0]))
        wcet = float(rng.uniform(0.01, 0.4)) * period
        bcet = wcet * float(rng.uniform(0.2, 1.0))
        pool.append(make_record(period, wcet, bcet, None, f"r{i}"))
    problems = []
    for _ in range(count):
        record = pool[int(rng.integers(len(pool)))]
        hp_size = int(rng.integers(0, 6))
        hp = [pool[int(j)] for j in rng.integers(0, len(pool), size=hp_size)]
        problems.append((record, hp))
    return problems


class TestEvaluateProblemsEquivalence:
    @settings(max_examples=25)
    @given(
        seed=st.integers(0, 2**32 - 1),
        count=st.integers(0, 3 * MIN_PROBLEM_POPULATION),
    )
    def test_matches_scalar_kernels(self, seed, count):
        # Counts straddle every tier gate: empty, the no-dedup fast
        # path, the deduped scalar tier, and the stacked tier.
        rng = np.random.default_rng(seed)
        problems = _record_problems(rng, count)
        scalar = [evaluate_candidate(r, hp) for r, hp in problems]
        batched = evaluate_problems(problems, population_kernel=True)
        assert batched == scalar  # tuple == tuple: bitwise float equality

    def test_duplicate_problems_share_entries(self, rng):
        # The detector pattern: the same (record, hp) posed many times.
        base = _record_problems(rng, MIN_PROBLEM_POPULATION)
        problems = base + base + base
        scalar = [evaluate_candidate(r, hp) for r, hp in problems]
        assert evaluate_problems(problems) == scalar

    def test_escape_hatch_matches(self, rng):
        problems = _record_problems(rng, 2 * MIN_PROBLEM_POPULATION)
        assert evaluate_problems(problems, population_kernel="off") == [
            evaluate_candidate(r, hp) for r, hp in problems
        ]

    def test_non_convergent_problem_raises_like_scalar(self, rng):
        # An infinite-period candidate against overloaded hp never
        # converges and never exceeds its (infinite) deadline: the
        # scalar kernel raises ScheduleError, and the stacked tier must
        # surface the same error (straggler fallback re-runs it).
        hp = [make_record(1.0, 1.0, 0.5, None, "hog")]
        bad = (make_record(math.inf, 1.0, 0.5, None, "bad"), hp)
        problems = _record_problems(rng, 2 * MIN_PROBLEM_POPULATION)
        problems.insert(7, bad)
        with pytest.raises(ScheduleError):
            [evaluate_candidate(r, h) for r, h in problems]
        with pytest.raises(ScheduleError):
            evaluate_problems(problems, population_kernel=True)
