"""Tests of in-server response-time analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rta.bcrt import best_case_response_time
from repro.rta.taskset import Task
from repro.rta.wcrt import worst_case_response_time
from repro.servers.model import PeriodicServer
from repro.servers.rta import (
    server_best_case_response_time,
    server_latency_jitter,
    server_worst_case_response_time,
)


def _task(name, period, wcet, bcet=None):
    return Task(name=name, period=period, wcet=wcet, bcet=bcet)


class TestReductionToDedicatedProcessor:
    """Theta = Pi must reproduce eqs. (3)-(4) exactly."""

    @given(
        st.floats(0.05, 0.4),
        st.floats(0.05, 0.4),
        st.floats(0.2, 1.0),
    )
    @settings(max_examples=40)
    def test_full_bandwidth_matches_plain_analyses(self, u1, u2, bfrac):
        server = PeriodicServer(budget=5.0, period=5.0)
        hi = _task("hi", 3.0, 3.0 * u1, 3.0 * u1 * bfrac)
        me = _task("me", 7.0, 7.0 * u2, 7.0 * u2 * bfrac)
        lo = _task("lo", 40.0, 4.0, 4.0 * bfrac)
        worst_plain = worst_case_response_time(lo, [hi, me], limit=1e9)
        worst_served = server_worst_case_response_time(
            server, lo, [hi, me], limit=1e9
        )
        assert worst_served == pytest.approx(worst_plain, rel=1e-9)
        best_plain = best_case_response_time(lo, [hi, me])
        best_served = server_best_case_response_time(server, lo, [hi, me])
        assert best_served == pytest.approx(best_plain, rel=1e-9)


class TestServerWcrt:
    def test_solo_task_half_server(self):
        # 2 units of work on a (2, 4) server: blackout 4 + 2 served = 6.
        server = PeriodicServer(budget=2.0, period=4.0)
        task = _task("t", 100.0, 2.0)
        assert server_worst_case_response_time(server, task, []) == pytest.approx(6.0)

    def test_work_spanning_budget_chunks(self):
        server = PeriodicServer(budget=2.0, period=4.0)
        task = _task("t", 100.0, 3.0)
        # blackout 4 + full chunk (ends 6) + 1 unit into next chunk at 8+1.
        assert server_worst_case_response_time(server, task, []) == pytest.approx(9.0)

    def test_smaller_budget_never_helps_wcrt(self):
        # R^w IS monotone in the budget (unlike the jitter).
        task = _task("t", 100.0, 3.0)
        small = PeriodicServer(budget=1.5, period=4.0)
        large = PeriodicServer(budget=3.0, period=4.0)
        r_small = server_worst_case_response_time(small, task, [])
        r_large = server_worst_case_response_time(large, task, [])
        assert r_large <= r_small

    def test_interference_inside_server(self):
        server = PeriodicServer(budget=2.0, period=4.0)
        hi = _task("hi", 10.0, 1.0)
        lo = _task("lo", 100.0, 2.0)
        served = server_worst_case_response_time(server, lo, [hi])
        solo = server_worst_case_response_time(server, lo, [])
        assert served > solo

    def test_limit_gives_inf(self):
        server = PeriodicServer(budget=1.0, period=10.0)
        task = _task("t", 12.0, 2.0)
        assert (
            server_worst_case_response_time(server, task, [], limit=12.0)
            == float("inf")
        )


class TestServerBcrt:
    def test_solo_task_best_case(self):
        # Best case: budget immediately; 3 units on (2, 4): 2 at once,
        # then wait for the next period boundary: t = 4 + 1 = 5.
        server = PeriodicServer(budget=2.0, period=4.0)
        task = _task("t", 100.0, 3.0, 3.0)
        assert server_best_case_response_time(server, task, []) == pytest.approx(5.0)

    def test_bcrt_below_wcrt(self):
        server = PeriodicServer(budget=2.0, period=5.0)
        hi = _task("hi", 9.0, 1.0, 0.5)
        lo = _task("lo", 100.0, 3.0, 2.0)
        best = server_best_case_response_time(server, lo, [hi])
        worst = server_worst_case_response_time(server, lo, [hi], limit=1e9)
        assert best <= worst

    def test_interface_object(self):
        server = PeriodicServer(budget=2.0, period=4.0)
        task = _task("t", 100.0, 3.0, 2.0)
        times = server_latency_jitter(server, task, deadline=100.0)
        assert times.latency == pytest.approx(
            server_best_case_response_time(server, task, [])
        )
        assert times.jitter >= 0


class TestJitterBudgetMonotonicity:
    def test_solo_task_jitter_is_exactly_twice_the_slack(self):
        """A task alone in a server has J = 2 (Pi - Theta): both extremes
        share the chunk structure; only the initial blackout differs."""
        task = _task("t", 1000.0, 3.0, 3.0)
        for budget in (1.5, 2.0, 2.5, 3.0):
            server = PeriodicServer(budget=budget, period=4.0)
            times = server_latency_jitter(server, task, deadline=1000.0)
            assert times.jitter == pytest.approx(2.0 * (4.0 - budget))

    def test_budget_increase_can_increase_jitter_with_companions(self):
        """The server-flavoured anomaly (pinned instance found by random
        search): with a higher-priority companion inside the server,
        raising the budget from 2.0 to 2.4 *increases* the control task's
        jitter -- the reason server sizing scans instead of bisecting."""
        hi = _task("hi", 15.0, 1.29, 1.01)
        lo = _task("lo", 1000.0, 2.4, 2.28)
        jitters = {}
        for budget in (2.0, 2.4):
            server = PeriodicServer(budget=budget, period=4.0)
            times = server_latency_jitter(server, lo, [hi], deadline=1000.0)
            jitters[budget] = times.jitter
        assert jitters[2.4] > jitters[2.0] + 1e-9
        assert jitters[2.0] == pytest.approx(5.41, abs=0.01)
        assert jitters[2.4] == pytest.approx(6.21, abs=0.01)
