"""Tests of the periodic resource model (supply bound functions)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.servers.model import PeriodicServer


@pytest.fixture
def half_server():
    return PeriodicServer(budget=2.0, period=4.0)


class TestConstruction:
    def test_bandwidth(self, half_server):
        assert half_server.bandwidth == pytest.approx(0.5)

    def test_blackout(self, half_server):
        assert half_server.worst_case_blackout == pytest.approx(4.0)

    def test_rejects_zero_budget(self):
        with pytest.raises(ModelError):
            PeriodicServer(budget=0.0, period=1.0)

    def test_rejects_budget_above_period(self):
        with pytest.raises(ModelError):
            PeriodicServer(budget=2.0, period=1.0)

    def test_full_bandwidth_flag(self):
        assert PeriodicServer(budget=1.0, period=1.0).is_full_bandwidth


class TestSbf:
    def test_zero_during_blackout(self, half_server):
        assert half_server.sbf(0.0) == 0.0
        assert half_server.sbf(3.99) == 0.0
        assert half_server.sbf(4.0) == 0.0

    def test_staircase_values(self, half_server):
        # After the 4.0 blackout: 2 units over [4, 6], flat over [6, 8]...
        assert half_server.sbf(5.0) == pytest.approx(1.0)
        assert half_server.sbf(6.0) == pytest.approx(2.0)
        assert half_server.sbf(7.5) == pytest.approx(2.0)
        assert half_server.sbf(9.0) == pytest.approx(3.0)

    def test_full_bandwidth_is_identity(self):
        server = PeriodicServer(budget=3.0, period=3.0)
        for t in (0.0, 0.5, 2.0, 10.0):
            assert server.sbf(t) == pytest.approx(t)

    @given(st.floats(0.0, 100.0), st.floats(0.0, 100.0))
    def test_monotone(self, t1, t2):
        server = PeriodicServer(budget=1.0, period=3.0)
        lo, hi = sorted((t1, t2))
        assert server.sbf(lo) <= server.sbf(hi) + 1e-12

    @given(st.floats(0.0, 100.0))
    def test_linear_lower_bound(self, t):
        # sbf(t) >= alpha (t - 2(Pi - Theta)) -- Shin & Lee's lsbf.
        server = PeriodicServer(budget=1.0, period=3.0)
        lsbf = max(0.0, server.bandwidth * (t - server.worst_case_blackout))
        assert server.sbf(t) >= lsbf - 1e-9

    @given(st.floats(0.0, 100.0))
    def test_sbf_below_msf(self, t):
        server = PeriodicServer(budget=1.5, period=4.0)
        assert server.sbf(t) <= server.msf(t) + 1e-12


class TestInverses:
    @given(st.floats(0.01, 50.0))
    def test_inverse_sbf_is_left_inverse(self, x):
        server = PeriodicServer(budget=1.0, period=3.0)
        t = server.inverse_sbf(x)
        assert server.sbf(t) >= x - 1e-9
        assert server.sbf(t - 1e-6) < x

    @given(st.floats(0.01, 50.0))
    def test_inverse_msf_is_left_inverse(self, x):
        server = PeriodicServer(budget=1.0, period=3.0)
        t = server.inverse_msf(x)
        assert server.msf(t) >= x - 1e-9
        assert server.msf(t - 1e-6) < x

    def test_inverse_sbf_exact_chunks(self, half_server):
        # 2 units served by t = 6 (blackout 4 + one budget).
        assert half_server.inverse_sbf(2.0) == pytest.approx(6.0)
        assert half_server.inverse_sbf(3.0) == pytest.approx(9.0)

    def test_inverse_msf_exact_chunks(self, half_server):
        assert half_server.inverse_msf(2.0) == pytest.approx(2.0)
        assert half_server.inverse_msf(3.0) == pytest.approx(5.0)

    def test_inverse_of_zero(self, half_server):
        assert half_server.inverse_sbf(0.0) == 0.0
        assert half_server.inverse_msf(0.0) == 0.0
