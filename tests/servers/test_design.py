"""Tests of minimum-bandwidth server synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.plants import get_plant
from repro.errors import ModelError
from repro.jittermargin.linearbound import LinearStabilityBound, stability_bound_for_plant
from repro.rta.taskset import Task
from repro.servers.design import minimum_bandwidth_server
from repro.servers.model import PeriodicServer
from repro.servers.rta import server_latency_jitter


def _servo_task(h=0.006, wcet=0.001, bcet=0.0004):
    plant = get_plant("dc_servo")
    return Task(
        name="servo",
        period=h,
        wcet=wcet,
        bcet=bcet,
        stability=stability_bound_for_plant(plant, h, exact_period=True),
        plant_name="dc_servo",
    )


class TestMinimumBandwidthServer:
    def test_finds_a_server(self):
        task = _servo_task()
        result = minimum_bandwidth_server(task, server_period=0.002)
        assert result is not None
        assert 0 < result.bandwidth <= 1.0

    def test_result_is_actually_stable(self):
        task = _servo_task()
        result = minimum_bandwidth_server(task, server_period=0.002)
        times = server_latency_jitter(result.server, task)
        assert times.finite
        assert task.stability.is_stable(times.latency, times.jitter)

    def test_result_is_grid_minimal(self):
        task = _servo_task()
        result = minimum_bandwidth_server(
            task, server_period=0.002, grid_points=32
        )
        assert result.server.budget == pytest.approx(min(result.stable_budgets))

    def test_tighter_constraint_needs_more_bandwidth(self):
        plant = get_plant("dc_servo")
        loose = _servo_task()
        tight = Task(
            name="servo",
            period=loose.period,
            wcet=loose.wcet,
            bcet=loose.bcet,
            stability=LinearStabilityBound(
                a=loose.stability.a, b=0.5 * loose.stability.b
            ),
            plant_name="dc_servo",
        )
        bw_loose = minimum_bandwidth_server(loose, 0.002).bandwidth
        bw_tight = minimum_bandwidth_server(tight, 0.002).bandwidth
        assert bw_tight >= bw_loose

    def test_impossible_constraint_returns_none(self):
        task = Task(
            name="x",
            period=0.01,
            wcet=0.005,
            bcet=0.005,
            stability=LinearStabilityBound(a=1.0, b=0.001),
        )
        # Even the full processor cannot beat b < c^b.
        assert minimum_bandwidth_server(task, 0.005) is None

    def test_requires_stability_bound(self):
        bare = Task(name="x", period=1.0, wcet=0.1)
        with pytest.raises(ModelError):
            minimum_bandwidth_server(bare, 0.5)

    def test_long_server_period_needs_more_bandwidth(self):
        # Coarser replenishment means longer blackouts: the same loop
        # needs a fatter slice of a slower server.
        task = _servo_task()
        fine = minimum_bandwidth_server(task, server_period=0.001)
        coarse = minimum_bandwidth_server(task, server_period=0.003)
        assert fine is not None and coarse is not None
        assert coarse.bandwidth >= fine.bandwidth

    def test_companions_raise_the_required_bandwidth(self):
        task = _servo_task()
        alone = minimum_bandwidth_server(task, 0.002)
        noisy = minimum_bandwidth_server(
            task,
            0.002,
            companions=(Task(name="c", period=0.01, wcet=0.0008, bcet=0.0008),),
        )
        assert noisy is None or noisy.bandwidth >= alone.bandwidth
