"""Smoke test of the daemon-lifetime analysis memo (CI fast lane).

The incremental-serving story end to end: a running daemon, one model,
one edited field.  The edited model misses the whole-model result store,
but its unchanged tasks replay from the shared
:class:`~repro.memo.AnalysisMemo` -- visible as ``x-repro-memo-hits`` on
the response and in ``GET /v1/stats`` -- while the response body stays
byte-identical to a direct façade call.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.api import ControlTaskSystem, analyze
from repro.serve import (
    AnalysisDaemon,
    ServeClientError,
    run_daemon_in_thread,
    wait_until_ready,
)

EXAMPLE = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "system.json"
)


@pytest.fixture(scope="module")
def example_model():
    with open(EXAMPLE) as handle:
        return json.load(handle)


def _edited(model, *, wcet: float):
    edited = copy.deepcopy(model)
    edited["tasks"][-1]["wcet"] = wcet
    return edited


def _run_daemon(**kwargs):
    daemon = AnalysisDaemon(port=0, batch_window=0.002, **kwargs)
    thread = run_daemon_in_thread(daemon)
    client = wait_until_ready(daemon.host, daemon.port)
    return daemon, thread, client


def _stop_daemon(thread, client):
    if thread.is_alive():
        try:
            client.shutdown()
        except ServeClientError:
            pass
        thread.join(timeout=10)
    assert not thread.is_alive()


@pytest.fixture()
def memo_daemon():
    daemon, thread, client = _run_daemon()
    yield daemon, client
    _stop_daemon(thread, client)


@pytest.fixture()
def memoless_daemon():
    daemon, thread, client = _run_daemon(memo_entries=0)
    yield daemon, client
    _stop_daemon(thread, client)


class TestMemoSmoke:
    def test_one_field_edit_hits_memo_and_stays_byte_identical(
        self, memo_daemon, example_model
    ):
        _, client = memo_daemon
        status, headers, _ = client.analyze_full(example_model)
        assert status == 200
        assert headers["x-repro-source"] == "computed"
        assert int(headers["x-repro-memo-recomputations"]) > 0

        edited = _edited(example_model, wcet=0.007)
        status, headers, body = client.analyze_full(edited)
        assert status == 200
        # The edit misses the whole-model store but replays the
        # unchanged tasks' subproblems from the daemon-lifetime memo.
        assert headers["x-repro-source"] == "computed"
        assert int(headers["x-repro-memo-hits"]) > 0
        direct = analyze(ControlTaskSystem.from_dict(edited))
        assert body.decode("utf-8") == direct.report_json()

    def test_stats_surface_memo_counters(self, memo_daemon, example_model):
        _, client = memo_daemon
        client.analyze(example_model)
        client.analyze(_edited(example_model, wcet=0.0075))
        memo = client.stats()["memo"]
        assert memo is not None
        assert memo["recomputations"] > 0
        assert memo["cache_hits"] > 0
        assert memo["interned_tasks"] > 0

    def test_store_hit_reports_source_store(self, memo_daemon, example_model):
        _, client = memo_daemon
        _, _, cold = client.analyze_full(example_model)
        status, headers, warm = client.analyze_full(example_model)
        assert status == 200
        assert headers["x-repro-source"] == "store"
        assert "x-repro-memo-hits" not in headers
        assert warm == cold

    def test_memo_disabled_serves_without_memo_metadata(
        self, memoless_daemon, example_model
    ):
        daemon, client = memoless_daemon
        assert daemon.memo is None
        status, headers, body = client.analyze_full(example_model)
        assert status == 200
        assert headers["x-repro-source"] == "computed"
        assert "x-repro-memo-hits" not in headers
        direct = analyze(ControlTaskSystem.from_dict(example_model))
        assert body.decode("utf-8") == direct.report_json()
        assert client.stats()["memo"] is None
