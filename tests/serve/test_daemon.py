"""End-to-end tests of the analysis daemon over real HTTP.

The central assertion is the serving contract: response bodies are
**byte-identical** to the direct in-process façade output for the same
model -- same versioned schema, same ``canonical_sha256``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import ControlTaskSystem, analyze
from repro.api.service import assign
from repro.serve import (
    AnalysisDaemon,
    ServeClient,
    ServeClientError,
    run_daemon_in_thread,
    wait_until_ready,
)

EXAMPLE = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "system.json"
)


@pytest.fixture(scope="module")
def example_model():
    with open(EXAMPLE) as handle:
        return json.load(handle)


@pytest.fixture()
def daemon_client(tmp_path):
    """A running daemon on an ephemeral port + a connected client."""
    daemon = AnalysisDaemon(
        port=0, batch_window=0.002, cache_dir=str(tmp_path)
    )
    thread = run_daemon_in_thread(daemon)
    client = wait_until_ready(daemon.host, daemon.port)
    yield daemon, client
    if thread.is_alive():
        try:
            client.shutdown()
        except ServeClientError:
            pass
        thread.join(timeout=10)
    assert not thread.is_alive()


class TestServingContract:
    def test_analyze_byte_identical_to_facade(self, daemon_client, example_model):
        _, client = daemon_client
        status, body = client.analyze_raw(example_model)
        assert status == 200
        direct = analyze(ControlTaskSystem.from_dict(example_model))
        assert body.decode("utf-8") == direct.report_json()
        served = json.loads(body)
        assert served["canonical_sha256"] == direct.canonical_sha256()

    def test_assign_byte_identical_to_facade(self, daemon_client, example_model):
        _, client = daemon_client
        status, body = client.assign_raw(example_model, algorithm="audsley")
        assert status == 200
        direct = assign(
            ControlTaskSystem.from_dict(example_model), algorithm="audsley"
        )
        assert body.decode("utf-8") == direct.outcome_json()

    def test_cached_response_stays_byte_identical(
        self, daemon_client, example_model
    ):
        daemon, client = daemon_client
        _, cold = client.analyze_raw(example_model)
        _, warm = client.analyze_raw(example_model)
        assert warm == cold
        assert daemon.responses_from_cache >= 1
        assert client.stats()["store"]["hits_memory"] >= 1

    def test_disk_tier_warm_start(self, tmp_path, example_model):
        """A daemon restarted on the same --cache-dir serves from disk."""
        expected = analyze(
            ControlTaskSystem.from_dict(example_model)
        ).report_json()
        for round_index in range(2):
            daemon = AnalysisDaemon(
                port=0, batch_window=0.0, cache_dir=str(tmp_path)
            )
            thread = run_daemon_in_thread(daemon)
            client = wait_until_ready(daemon.host, daemon.port)
            _, body = client.analyze_raw(example_model)
            assert body.decode("utf-8") == expected
            stats = client.stats()["store"]
            client.shutdown()
            thread.join(timeout=10)
            if round_index == 1:
                assert stats["hits_disk"] == 1


class TestControlPlane:
    def test_health(self, daemon_client):
        _, client = daemon_client
        health = client.health()
        assert health["status"] == "ok"
        assert health["schema_version"] == 1

    def test_stats_counters(self, daemon_client, example_model):
        _, client = daemon_client
        client.analyze(example_model)
        stats = client.stats()
        assert stats["requests_total"] >= 2  # health poll + analyze
        assert stats["batcher"]["requests"] >= 1

    def test_shutdown_is_clean(self, tmp_path, example_model):
        daemon = AnalysisDaemon(port=0, cache_dir=str(tmp_path))
        thread = run_daemon_in_thread(daemon)
        client = wait_until_ready(daemon.host, daemon.port)
        client.analyze(example_model)
        assert client.shutdown()["status"] == "shutting down"
        thread.join(timeout=10)
        assert not thread.is_alive()
        with pytest.raises(ServeClientError):
            client.health()


class TestErrorHandling:
    def test_invalid_json_is_400(self, daemon_client):
        _, client = daemon_client
        status, body = client.request_raw("POST", "/v1/analyze", b"{nope")
        assert status == 400
        assert "JSON" in json.loads(body)["error"]

    def test_malformed_model_is_400(self, daemon_client):
        _, client = daemon_client
        status, body = client.analyze_raw({"tasks": []})
        assert status == 400
        assert "tasks" in json.loads(body)["error"]

    def test_non_object_body_is_400(self, daemon_client):
        _, client = daemon_client
        status, _ = client.request_raw("POST", "/v1/analyze", b"[1, 2]")
        assert status == 400

    def test_unknown_algorithm_is_400(self, daemon_client, example_model):
        _, client = daemon_client
        status, body = client.assign_raw(example_model, algorithm="magic")
        assert status == 400
        assert "magic" in json.loads(body)["error"]

    def test_unanalysable_model_is_422_and_isolated(
        self, daemon_client, example_model
    ):
        """A poisoned model errors alone; batch-mates still succeed."""
        _, client = daemon_client
        # as_given without priorities resolves fine at model time but
        # fails analysis -- the per-request error path.
        bad = {
            "name": "poison",
            "tasks": [
                {"name": "a", "period": 1.0, "wcet": 0.1},
                {"name": "b", "period": 2.0, "wcet": 0.2},
            ],
        }
        status, body = client.analyze_raw(bad)
        assert status == 422
        assert "error" in json.loads(body)
        # The daemon still serves good models afterwards.
        status, _ = client.analyze_raw(example_model)
        assert status == 200

    def test_unknown_route_is_404(self, daemon_client):
        _, client = daemon_client
        status, body = client.request_raw("GET", "/nope")
        assert status == 404
        assert "routes" in json.loads(body)

    def test_wrong_method_is_405(self, daemon_client):
        _, client = daemon_client
        status, _ = client.request_raw("GET", "/v1/analyze")
        assert status == 405


class TestCoalescingOverHttp:
    def test_concurrent_identical_requests_coalesce(self, tmp_path, example_model):
        from concurrent.futures import ThreadPoolExecutor

        daemon = AnalysisDaemon(
            port=0,
            batch_window=0.05,
            cache_responses=False,  # force every request into the batcher
            cache_dir=None,
        )
        thread = run_daemon_in_thread(daemon)
        client = wait_until_ready(daemon.host, daemon.port)

        def one(_):
            return ServeClient(daemon.host, daemon.port).analyze_raw(
                example_model
            )

        with ThreadPoolExecutor(max_workers=6) as pool:
            responses = list(pool.map(one, range(6)))
        bodies = {body for _, body in responses}
        assert all(status == 200 for status, _ in responses)
        assert len(bodies) == 1  # all byte-identical
        stats = client.stats()["batcher"]
        assert stats["coalesced"] >= 1
        client.shutdown()
        thread.join(timeout=10)


class TestScenarioRoutes:
    def test_catalogue_listing(self, daemon_client):
        from repro.scenarios import scenario_names

        _, client = daemon_client
        assert client.scenarios()["scenarios"] == list(scenario_names())

    def test_run_byte_identical_to_facade(self, daemon_client):
        from repro.scenarios import scenario_run_json

        _, client = daemon_client
        status, body = client.scenarios_run_raw(
            "smoke_single_loop", instances=3, seed=11
        )
        assert status == 200
        assert body.decode("utf-8") == scenario_run_json(
            "smoke_single_loop", instances=3, seed=11
        )
        payload = json.loads(body)
        assert payload["scenario"] == "smoke_single_loop"
        assert len(payload["records"]) == 3

    def test_run_is_cached(self, daemon_client):
        daemon, client = daemon_client
        before = daemon.responses_from_cache
        _, cold = client.scenarios_run_raw("smoke_single_loop", instances=2)
        _, warm = client.scenarios_run_raw("smoke_single_loop", instances=2)
        assert warm == cold
        assert daemon.responses_from_cache == before + 1

    def test_unknown_scenario_is_400(self, daemon_client):
        _, client = daemon_client
        status, body = client.scenarios_run_raw("no_such_scenario")
        assert status == 400
        assert "known" in json.loads(body)

    def test_bad_instance_count_is_400(self, daemon_client):
        _, client = daemon_client
        status, _ = client.scenarios_run_raw("smoke_single_loop", instances=0)
        assert status == 400


class TestRequestRobustness:
    def test_nan_period_model_is_rejected_400(self, daemon_client):
        """json.loads accepts bare NaN; the schema boundary must reject
        it cleanly instead of letting it reach the numeric kernels
        (where it dies as an opaque ValueError) or produce a vacuous
        'stable' verdict."""
        _, client = daemon_client
        nan_model = json.loads(
            '{"name": "nan-period", "tasks": '
            '[{"name": "a", "period": NaN, "wcet": 0.1, "priority": 2},'
            ' {"name": "b", "period": 2.0, "wcet": 0.2, "priority": 1}]}'
        )
        status, body = client.analyze_raw(nan_model)
        assert status == 400
        assert "finite" in json.loads(body)["error"]
        assert client.health()["status"] == "ok"

    def test_non_repro_error_is_isolated_per_item(self, daemon_client):
        """The dispatch isolation guarantee covers *any* exception, not
        just ReproError: a payload that explodes with an AttributeError
        must yield one error result, not poison the whole batch."""
        daemon, _ = daemon_client
        good = ControlTaskSystem.from_dict(
            {
                "name": "good",
                "tasks": [
                    {"name": "t", "period": 1.0, "wcet": 0.1, "priority": 1}
                ],
            }
        )
        results = daemon._dispatch(("analyze",), [good, object()])
        assert results[0][0] is True
        assert json.loads(results[0][1])["stable"] is True
        assert results[1][0] is False
        assert "error" in json.loads(results[1][1])

    def test_stalled_client_is_timed_out(self, example_model):
        import socket
        import time

        daemon = AnalysisDaemon(port=0, read_timeout=0.2)
        thread = run_daemon_in_thread(daemon)
        client = wait_until_ready(daemon.host, daemon.port)
        start = time.monotonic()
        with socket.create_connection((daemon.host, daemon.port)) as stalled:
            stalled.sendall(b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 50\r\n\r\n")
            # ... and never send the body: the daemon must cut us off.
            response = stalled.recv(4096)
        assert time.monotonic() - start < 5.0
        assert b"408" in response.split(b"\r\n", 1)[0]
        # The daemon still serves normal traffic afterwards.
        status, _ = client.analyze_raw(example_model)
        assert status == 200
        client.shutdown()
        thread.join(timeout=10)

    def test_negative_content_length_is_400(self, daemon_client):
        import socket

        daemon, _ = daemon_client
        with socket.create_connection((daemon.host, daemon.port)) as raw:
            raw.sendall(
                b"POST /v1/analyze HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
            )
            response = raw.recv(4096)
        assert b" 400 " in response.split(b"\r\n", 1)[0]

    def test_coalesced_batch_writes_store_once(self, daemon_client, example_model):
        from concurrent.futures import ThreadPoolExecutor

        daemon, client = daemon_client
        client.analyze(example_model)  # populate
        puts_before = daemon.store.stats()["entries"]

        def one(_):
            return ServeClient(daemon.host, daemon.port).analyze_raw(example_model)

        with ThreadPoolExecutor(max_workers=4) as pool:
            assert all(s == 200 for s, _ in pool.map(one, range(4)))
        assert daemon.store.stats()["entries"] == puts_before


class TestTopology:
    def test_serial_topology_in_stats(self, daemon_client):
        _, client = daemon_client
        topology = client.stats()["topology"]
        assert topology["mode"] == "serial"
        assert topology["jobs"] == 1
        assert topology["shard_index"] is None
        assert topology["pool"] is None

    @pytest.mark.loadgen
    def test_pooled_mode_byte_identical_through_daemon(
        self, tmp_path, example_model
    ):
        """--jobs 2 routes dispatch through the process pool; the served
        bytes must still match a direct façade call."""
        daemon = AnalysisDaemon(
            port=0, batch_window=0.002, jobs=2, cache_dir=str(tmp_path)
        )
        thread = run_daemon_in_thread(daemon)
        client = wait_until_ready(daemon.host, daemon.port)
        try:
            status, body = client.analyze_raw(example_model)
            assert status == 200
            direct = analyze(ControlTaskSystem.from_dict(example_model))
            assert body.decode("utf-8") == direct.report_json()
            status, body = client.assign_raw(
                example_model, algorithm="audsley"
            )
            assert status == 200
            assert body.decode("utf-8") == assign(
                ControlTaskSystem.from_dict(example_model),
                algorithm="audsley",
            ).outcome_json()
            topology = client.stats()["topology"]
            assert topology["mode"] == "pool"
            assert topology["jobs"] == 2
            assert topology["pool"]["workers"] == 2
            assert topology["pool"]["items"] >= 2
        finally:
            try:
                client.shutdown()
            except ServeClientError:
                pass
            thread.join(timeout=10)
