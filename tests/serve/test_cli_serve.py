"""CLI tests: ``python -m repro serve`` / ``python -m repro request``."""

from __future__ import annotations

import json
import os
import socket
import threading

import pytest

from repro.api import ControlTaskSystem, analyze
from repro.cli import main
from repro.serve import (
    AnalysisDaemon,
    run_daemon_in_thread,
    wait_until_ready,
)

EXAMPLE = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "system.json"
)


@pytest.fixture()
def daemon():
    daemon = AnalysisDaemon(port=0, batch_window=0.002)
    thread = run_daemon_in_thread(daemon)
    client = wait_until_ready(daemon.host, daemon.port)
    yield daemon
    client.shutdown()
    thread.join(timeout=10)


class TestRequestCommand:
    def test_analyze_round_trip(self, daemon, tmp_path, capsys):
        out = tmp_path / "response.json"
        rc = main(
            ["request", EXAMPLE, "--port", str(daemon.port), "--out", str(out)]
        )
        assert rc == 0
        with open(EXAMPLE) as handle:
            direct = analyze(ControlTaskSystem.from_dict(json.load(handle)))
        assert out.read_bytes() == direct.report_json().encode() + b"\n"
        # stdout carries the exact wire bytes (plus the newline).
        assert capsys.readouterr().out.strip() == direct.report_json()

    def test_assign_round_trip(self, daemon, capsys):
        rc = main(
            [
                "request",
                EXAMPLE,
                "--port",
                str(daemon.port),
                "--assign",
                "--algorithm",
                "audsley",
            ]
        )
        assert rc == 0
        response = json.loads(capsys.readouterr().out)
        assert response["algorithm"] == "audsley"
        assert response["ok"] is True

    def test_health_and_stats(self, daemon, capsys):
        assert main(["request", "--health", "--port", str(daemon.port)]) == 0
        assert json.loads(capsys.readouterr().out)["status"] == "ok"
        assert main(["request", "--stats", "--port", str(daemon.port)]) == 0
        assert "store" in json.loads(capsys.readouterr().out)

    def test_no_daemon_is_exit_2(self, capsys):
        with socket.socket() as probe:  # a port nothing listens on
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        rc = main(["request", EXAMPLE, "--port", str(port)])
        assert rc == 2
        assert "repro serve" in capsys.readouterr().err

    def test_model_required_without_control_flag(self, capsys):
        rc = main(["request"])
        assert rc == 2
        assert "model file" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_main_serves_and_shuts_down(self, capsys):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        rcs = []
        thread = threading.Thread(
            target=lambda: rcs.append(
                main(["serve", "--port", str(port), "--batch-window", "0.002"])
            ),
            daemon=True,
        )
        thread.start()
        client = wait_until_ready("127.0.0.1", port)
        with open(EXAMPLE) as handle:
            model = json.load(handle)
        status, body = client.analyze_raw(model)
        assert status == 200
        assert json.loads(body)["stable"] is True
        assert main(["request", "--shutdown", "--port", str(port)]) == 0
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert rcs == [0]


class TestScenarioRequest:
    def test_scenario_draw_round_trip(self, daemon, capsys):
        from repro.scenarios import scenario_run_json

        rc = main(
            [
                "request",
                "--scenario",
                "smoke_single_loop",
                "--instances",
                "2",
                "--seed",
                "11",
                "--port",
                str(daemon.port),
            ]
        )
        assert rc == 0
        assert capsys.readouterr().out.strip() == scenario_run_json(
            "smoke_single_loop", instances=2, seed=11
        )
