"""Tests of the content-addressed response store (LRU + disk tier)."""

from __future__ import annotations

import json
import os

from repro.serve.store import STORE_FORMAT, ResultStore


class TestMemoryTier:
    def test_miss_then_hit(self):
        store = ResultStore(max_entries=4)
        assert store.get("analyze", "sha-a") is None
        store.put("analyze", "sha-a", "body-a")
        assert store.get("analyze", "sha-a") == "body-a"
        assert store.stats() == {
            "entries": 1,
            "max_entries": 4,
            "hits_memory": 1,
            "hits_disk": 0,
            "misses": 1,
        }

    def test_kind_namespaces_are_separate(self):
        store = ResultStore(max_entries=4)
        store.put("analyze", "sha", "report")
        store.put("assign-audsley", "sha", "outcome")
        assert store.get("analyze", "sha") == "report"
        assert store.get("assign-audsley", "sha") == "outcome"
        assert store.get("assign-backtracking", "sha") is None

    def test_lru_evicts_least_recently_used(self):
        store = ResultStore(max_entries=2)
        store.put("analyze", "a", "A")
        store.put("analyze", "b", "B")
        assert store.get("analyze", "a") == "A"  # refresh a
        store.put("analyze", "c", "C")  # evicts b
        assert store.get("analyze", "b") is None
        assert store.get("analyze", "a") == "A"
        assert store.get("analyze", "c") == "C"


class TestDiskTier:
    def test_survives_a_fresh_store(self, tmp_path):
        first = ResultStore(max_entries=8, cache_dir=str(tmp_path))
        first.put("analyze", "sha", "persisted-body")
        # A restarted daemon: empty memory, same cache_dir.
        second = ResultStore(max_entries=8, cache_dir=str(tmp_path))
        assert second.get("analyze", "sha") == "persisted-body"
        assert second.stats()["hits_disk"] == 1
        # ... and the entry is now promoted to memory.
        assert second.get("analyze", "sha") == "persisted-body"
        assert second.stats()["hits_memory"] == 1

    def test_disk_files_follow_cache_conventions(self, tmp_path):
        store = ResultStore(cache_dir=str(tmp_path))
        store.put("analyze", "sha", "body")
        files = os.listdir(tmp_path / "serve")
        assert len(files) == 1
        data = json.loads((tmp_path / "serve" / files[0]).read_text())
        assert data["format"] == STORE_FORMAT
        assert data["body"] == "body"

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        writer = ResultStore(cache_dir=str(tmp_path))
        writer.put("analyze", "sha", "body")
        (path,) = [
            tmp_path / "serve" / name
            for name in os.listdir(tmp_path / "serve")
        ]
        for corruption in (
            "{truncated",
            "[1, 2]",
            json.dumps({"format": STORE_FORMAT + 1, "key": "x", "body": "b"}),
            json.dumps({"format": STORE_FORMAT, "key": "wrong", "body": "b"}),
            json.dumps({"format": STORE_FORMAT, "key": "analyze-sha", "body": 3}),
        ):
            path.write_text(corruption)
            fresh = ResultStore(cache_dir=str(tmp_path))
            assert fresh.get("analyze", "sha") is None, corruption

    def test_memory_only_store_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        store = ResultStore()
        store.put("analyze", "sha", "body")
        assert os.listdir(tmp_path) == []

    def test_entries_from_another_version_are_misses(self, tmp_path):
        writer = ResultStore(cache_dir=str(tmp_path))
        writer.put("analyze", "sha", "body")
        (path,) = [
            tmp_path / "serve" / name
            for name in os.listdir(tmp_path / "serve")
        ]
        data = json.loads(path.read_text())
        assert "/" in data["version"]  # package version / schema stamp
        data["version"] = "0.0.1/schema1"
        path.write_text(json.dumps(data))
        fresh = ResultStore(cache_dir=str(tmp_path))
        # Stale-producer bytes must never be replayed as current output.
        assert fresh.get("analyze", "sha") is None
