"""Multi-process contention on a shared ``ResultStore`` disk tier.

The sharded cluster points every daemon at one ``--cache-dir``, so the
disk tier must tolerate concurrent writers on the same keys: a reader
must only ever observe ``None`` (miss -> recompute) or a complete,
valid body -- never a torn read -- and a corrupted entry must degrade
to a miss even while another process is rewriting it.  These tests
hammer real ``ResultStore`` instances from real processes, then close
the loop at the daemon level with two daemons sharing one cache dir.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.api.service import analyze
from repro.scenarios.workload import scenario_request_pool
from repro.serve import (
    AnalysisDaemon,
    ServeClientError,
    run_daemon_in_thread,
    wait_until_ready,
)
from repro.serve.store import ResultStore

pytestmark = pytest.mark.loadgen

#: Bodies long enough that a torn read could not accidentally parse.
_BODIES = {
    f"sha-{k}": json.dumps({"payload": f"value-{k}" * 200, "k": k})
    for k in range(8)
}


def _writer_main(cache_dir: str, rounds: int) -> None:
    """Re-``put`` every key over and over from a separate process."""
    store = ResultStore(max_entries=4, cache_dir=cache_dir)
    for _ in range(rounds):
        for sha, body in _BODIES.items():
            store.put("analyze", sha, body)


def _reader_main(cache_dir: str, rounds: int, queue) -> None:
    """Read every key repeatedly; report any body that isn't pristine.

    ``max_entries=1`` keeps the memory tier useless so nearly every
    ``get`` goes through the disk tier under writer contention.
    """
    store = ResultStore(max_entries=1, cache_dir=cache_dir)
    torn = []
    observed = 0
    for _ in range(rounds):
        for sha, expected in _BODIES.items():
            body = store.get("analyze", sha)
            if body is None:
                continue  # a miss is always acceptable
            observed += 1
            if body != expected:
                torn.append(sha)
    queue.put({"torn": torn, "observed": observed})


class TestConcurrentDiskTier:
    def test_no_torn_reads_under_writer_contention(self, tmp_path):
        """Readers racing two writers see full bodies or misses, only."""
        cache_dir = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        writers = [
            ctx.Process(target=_writer_main, args=(cache_dir, 60))
            for _ in range(2)
        ]
        readers = [
            ctx.Process(target=_reader_main, args=(cache_dir, 60, queue))
            for _ in range(2)
        ]
        for proc in writers + readers:
            proc.start()
        reports = [queue.get(timeout=60) for _ in readers]
        for proc in writers + readers:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        assert all(report["torn"] == [] for report in reports)
        # The race is only meaningful if reads actually hit the disk
        # tier while writers were live.
        assert sum(report["observed"] for report in reports) > 0

    def test_corrupt_entry_recomputes_under_contention(self, tmp_path):
        """Truncating an entry mid-race degrades to a miss, never an error."""
        cache_dir = str(tmp_path / "cache")
        store = ResultStore(max_entries=1, cache_dir=cache_dir)
        for sha, body in _BODIES.items():
            store.put("analyze", sha, body)
        ctx = multiprocessing.get_context("fork")
        writer = ctx.Process(target=_writer_main, args=(cache_dir, 40))
        writer.start()
        try:
            for _ in range(40):
                for sha in _BODIES:
                    path = store._disk_path(store.key("analyze", sha))
                    try:
                        with open(path, "w") as handle:
                            handle.write('{"format": 1, "body": tru')
                    except OSError:
                        pass
                    # Corrupt-or-rewritten: either the writer already
                    # replaced the file (full body) or we read our own
                    # damage (miss).  Nothing else is acceptable.
                    body = store.get("analyze", sha)
                    assert body in (None, _BODIES[sha])
        finally:
            writer.join(timeout=30)
        assert writer.exitcode == 0

    def test_atomic_write_never_leaves_partial_files(self, tmp_path):
        """After the dust settles every surviving entry loads cleanly."""
        cache_dir = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(target=_writer_main, args=(cache_dir, 30))
            for _ in range(3)
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        store = ResultStore(max_entries=1, cache_dir=cache_dir)
        for sha, expected in _BODIES.items():
            assert store.get("analyze", sha) == expected
        # No stray temp files left behind by the atomic-write protocol.
        serve_dir = os.path.join(cache_dir, "serve")
        stray = [
            name
            for name in os.listdir(serve_dir)
            if not name.endswith(".json")
        ]
        assert stray == []


class TestTwoDaemonsOneCacheDir:
    @pytest.fixture(scope="class")
    def systems(self):
        return scenario_request_pool(unique=3, seed=47)

    def _serve(self, cache_dir):
        daemon = AnalysisDaemon(
            port=0, batch_window=0.002, cache_dir=cache_dir
        )
        thread = run_daemon_in_thread(daemon)
        client = wait_until_ready(daemon.host, daemon.port)
        return daemon, thread, client

    def test_shared_disk_tier_stays_byte_identical(self, tmp_path, systems):
        """Two live daemons, one cache dir: warm hits stay canonical."""
        cache_dir = str(tmp_path / "cache")
        d1, t1, c1 = self._serve(cache_dir)
        d2, t2, c2 = self._serve(cache_dir)
        try:
            direct = {
                s.canonical_sha256(): analyze(s).report_json()
                for s in systems
            }
            # Daemon 1 computes; daemon 2 must replay from the shared
            # disk tier, byte-identically.
            for system in systems:
                status, body = c1.analyze_raw(system.to_dict())
                assert status == 200
                assert body.decode() == direct[system.canonical_sha256()]
            for system in systems:
                status, body = c2.analyze_raw(system.to_dict())
                assert status == 200
                assert body.decode() == direct[system.canonical_sha256()]
            assert c2.stats()["store"]["hits_disk"] >= len(systems)
        finally:
            for client, thread in ((c1, t1), (c2, t2)):
                try:
                    client.shutdown()
                except ServeClientError:
                    pass
                thread.join(timeout=10)

    def test_corruption_between_daemons_recomputes(self, tmp_path, systems):
        """An entry corrupted after daemon 1 wrote it costs daemon 2 a
        recompute, not correctness."""
        cache_dir = str(tmp_path / "cache")
        d1, t1, c1 = self._serve(cache_dir)
        try:
            for system in systems:
                assert c1.analyze_raw(system.to_dict())[0] == 200
        finally:
            try:
                c1.shutdown()
            except ServeClientError:
                pass
            t1.join(timeout=10)
        # Vandalise every disk entry.
        serve_dir = os.path.join(cache_dir, "serve")
        for name in os.listdir(serve_dir):
            with open(os.path.join(serve_dir, name), "w") as handle:
                handle.write("garbage")
        d2, t2, c2 = self._serve(cache_dir)
        try:
            for system in systems:
                status, body = c2.analyze_raw(system.to_dict())
                assert status == 200
                assert body.decode() == analyze(system).report_json()
            stats = c2.stats()["store"]
            assert stats["hits_disk"] == 0
            assert stats["misses"] >= len(systems)
        finally:
            try:
                c2.shutdown()
            except ServeClientError:
                pass
            t2.join(timeout=10)
