"""Tests of the micro-batcher: coalescing, grouping, windows, failure."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve.batcher import MicroBatcher


def _run(coro):
    return asyncio.run(coro)


class _Recorder:
    """Dispatch stub that records every (group, payloads) call."""

    def __init__(self, result=lambda group, payload: f"r:{payload}"):
        self.calls = []
        self._result = result
        self.block = None  # optional threading.Event to stall dispatch

    def __call__(self, group, payloads):
        if self.block is not None:
            self.block.wait(5.0)
        self.calls.append((group, list(payloads)))
        return [self._result(group, p) for p in payloads]


class TestCoalescing:
    def test_identical_keys_compute_once(self):
        recorder = _Recorder()

        async def scenario():
            batcher = MicroBatcher(recorder, window=0.05, max_batch=16)
            batcher.start()
            results = await asyncio.gather(
                batcher.submit(("analyze",), "sha-1", "m1"),
                batcher.submit(("analyze",), "sha-1", "m1"),
                batcher.submit(("analyze",), "sha-2", "m2"),
            )
            await batcher.close()
            return results

        results = _run(scenario())
        assert results == ["r:m1", "r:m1", "r:m2"]
        # One batch, two unique payloads: the duplicate was coalesced.
        assert len(recorder.calls) == 1
        assert recorder.calls[0][1] == ["m1", "m2"]

    def test_coalesce_counter(self):
        recorder = _Recorder()

        async def scenario():
            batcher = MicroBatcher(recorder, window=0.05, max_batch=16)
            batcher.start()
            await asyncio.gather(
                *(batcher.submit(("analyze",), "same", "m") for _ in range(5))
            )
            stats = batcher.stats()
            await batcher.close()
            return stats

        stats = _run(scenario())
        assert stats["requests"] == 5
        assert stats["coalesced"] == 4


class TestGrouping:
    def test_groups_dispatch_separately(self):
        recorder = _Recorder()

        async def scenario():
            batcher = MicroBatcher(recorder, window=0.05, max_batch=16)
            batcher.start()
            results = await asyncio.gather(
                batcher.submit(("analyze",), "a", "m-a"),
                batcher.submit(("assign", "audsley"), "a", "m-a"),
                batcher.submit(("assign", "backtracking"), "a", "m-a"),
            )
            await batcher.close()
            return results

        results = _run(scenario())
        assert results[0] == "r:m-a"
        groups = [group for group, _ in recorder.calls]
        assert sorted(groups) == [
            ("analyze",),
            ("assign", "audsley"),
            ("assign", "backtracking"),
        ]


class TestBatchingMechanics:
    def test_burst_during_computation_forms_one_batch(self):
        """Requests queued while a batch computes are drained together."""
        recorder = _Recorder()
        recorder.block = threading.Event()

        async def scenario():
            batcher = MicroBatcher(recorder, window=0.0, max_batch=16)
            batcher.start()
            first = asyncio.ensure_future(
                batcher.submit(("analyze",), "k0", "m0")
            )
            await asyncio.sleep(0.05)  # first dispatch is now blocked
            rest = [
                asyncio.ensure_future(batcher.submit(("analyze",), f"k{i}", f"m{i}"))
                for i in range(1, 5)
            ]
            await asyncio.sleep(0.05)
            recorder.block.set()
            results = await asyncio.gather(first, *rest)
            await batcher.close()
            return results

        results = _run(scenario())
        assert results == [f"r:m{i}" for i in range(5)]
        # Batch 1 = the blocked single; batch 2 = the accumulated burst,
        # despite window=0 (queue drain needs no waiting).
        assert [len(p) for _, p in recorder.calls] == [1, 4]

    def test_max_batch_caps_collection(self):
        recorder = _Recorder()
        recorder.block = threading.Event()

        async def scenario():
            batcher = MicroBatcher(recorder, window=0.0, max_batch=2)
            batcher.start()
            futures = [
                asyncio.ensure_future(batcher.submit(("g",), f"k{i}", f"m{i}"))
                for i in range(5)
            ]
            await asyncio.sleep(0.05)
            recorder.block.set()
            results = await asyncio.gather(*futures)
            await batcher.close()
            return results

        results = _run(scenario())
        assert results == [f"r:m{i}" for i in range(5)]
        assert all(len(p) <= 2 for _, p in recorder.calls)

    def test_quiet_gap_dispatches_before_window_expires(self):
        recorder = _Recorder()

        async def scenario():
            loop = asyncio.get_running_loop()
            # A one-second window would be fatal to latency if it were
            # always waited out; the quiet gap must cut it short.
            batcher = MicroBatcher(
                recorder, window=1.0, max_batch=16, quiet_gap=0.005
            )
            batcher.start()
            start = loop.time()
            await batcher.submit(("analyze",), "k", "m")
            elapsed = loop.time() - start
            await batcher.close()
            return elapsed

        assert _run(scenario()) < 0.5


class TestFailure:
    def test_dispatch_exception_fans_out_to_waiters(self):
        def explode(group, payloads):
            raise RuntimeError("kernel on fire")

        async def scenario():
            batcher = MicroBatcher(explode, window=0.02, max_batch=16)
            batcher.start()
            results = await asyncio.gather(
                batcher.submit(("g",), "a", "m1"),
                batcher.submit(("g",), "a", "m1"),
                return_exceptions=True,
            )
            await batcher.close()
            return results

        results = _run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_result_count_mismatch_is_an_error(self):
        async def scenario():
            batcher = MicroBatcher(
                lambda group, payloads: [], window=0.0, max_batch=4
            )
            batcher.start()
            result = await asyncio.gather(
                batcher.submit(("g",), "a", "m"), return_exceptions=True
            )
            await batcher.close()
            return result

        (result,) = _run(scenario())
        assert isinstance(result, RuntimeError)

    def test_submit_after_close_rejected(self):
        async def scenario():
            batcher = MicroBatcher(_Recorder(), window=0.0)
            batcher.start()
            await batcher.close()
            with pytest.raises(RuntimeError, match="closed"):
                await batcher.submit(("g",), "a", "m")

        _run(scenario())

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            MicroBatcher(_Recorder(), window=-1)
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(_Recorder(), max_batch=0)
        with pytest.raises(ValueError, match="quiet_gap"):
            MicroBatcher(_Recorder(), quiet_gap=-0.1)


class TestShutdownRace:
    def test_close_fails_stragglers(self):
        """A request that slips into the queue around the _CLOSE sentinel
        must fail cleanly at close(), never hang its handler forever."""
        from repro.serve.batcher import _CLOSE

        recorder = _Recorder()

        async def scenario():
            batcher = MicroBatcher(recorder, window=0.0)
            batcher.start()
            await batcher._queue.put(_CLOSE)  # kills the collector early
            pending = asyncio.ensure_future(batcher.submit(("g",), "k", "m"))
            await asyncio.sleep(0.05)
            await batcher.close()
            with pytest.raises(RuntimeError, match="closed"):
                await pending

        _run(scenario())
