"""End-to-end tests of the daemon's observability surface.

Covers the tentpole wiring over real HTTP: ``GET /v1/metrics``,
``POST /v1/detect`` (with Monte-Carlo revalidation), the enriched
``GET /v1/stats``, the ``X-Repro-Trace-Id`` header, the JSON-lines
event log -- and the contract that none of it changes a single response
body byte, observability on or off.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import ControlTaskSystem, analyze
from repro.obs import read_events
from repro.scenarios import drifting_request_stream
from repro.serve import (
    AnalysisDaemon,
    ServeClientError,
    run_daemon_in_thread,
    wait_until_ready,
)

pytestmark = pytest.mark.obs

EXAMPLE = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "system.json"
)


@pytest.fixture(scope="module")
def example_model():
    with open(EXAMPLE) as handle:
        return json.load(handle)


def start_daemon(**kwargs):
    daemon = AnalysisDaemon(port=0, batch_window=0.002, **kwargs)
    thread = run_daemon_in_thread(daemon)
    client = wait_until_ready(daemon.host, daemon.port)
    return daemon, thread, client


def stop_daemon(thread, client):
    if thread.is_alive():
        try:
            client.shutdown()
        except ServeClientError:
            pass
        thread.join(timeout=10)
    assert not thread.is_alive()


@pytest.fixture()
def daemon_client(tmp_path):
    daemon, thread, client = start_daemon(
        event_log=str(tmp_path / "events.jsonl")
    )
    yield daemon, client
    stop_daemon(thread, client)


class TestMetricsEndpoint:
    def test_exposition_well_formed(self, daemon_client, example_model):
        _, client = daemon_client
        client.analyze(example_model)
        status, headers, body = client.request_full("GET", "/v1/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert 'repro_requests_total{endpoint="/v1/analyze"} 1' in text
        assert "# TYPE repro_request_seconds summary" in text
        assert "repro_daemon_uptime_seconds" in text
        # Daemon /v1/stats counters ride along as one-shot gauges.
        assert "repro_stats_store_" in text
        # Every non-comment line is "<series> <value>".
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                assert name
                float(value)  # parses

    def test_client_metrics_helper(self, daemon_client):
        _, client = daemon_client
        assert "repro_requests_total" in client.metrics()


class TestTraceHeader:
    def test_trace_id_on_every_response(self, daemon_client, example_model):
        _, client = daemon_client
        _, first_headers, _ = client.request_full(
            "POST", "/v1/analyze", json.dumps(example_model).encode()
        )
        _, second_headers, _ = client.request_full("GET", "/v1/health")
        assert first_headers["x-repro-trace-id"]
        assert second_headers["x-repro-trace-id"]
        assert (
            first_headers["x-repro-trace-id"]
            != second_headers["x-repro-trace-id"]
        )


class TestStatsSurface:
    def test_uptime_and_obs_block(self, daemon_client, example_model):
        _, client = daemon_client
        client.analyze(example_model)
        stats = client.stats()
        assert stats["uptime_seconds"] >= 0
        obs = stats["obs"]
        assert obs["enabled"] is True
        assert obs["requests_by_endpoint"]["/v1/analyze"] == 1
        assert obs["in_flight"] >= 0
        assert obs["window"]["entries"] == 1
        assert obs["latency_seconds"]["/v1/analyze"]["count"] == 1

    def test_errors_counted(self, daemon_client):
        _, client = daemon_client
        status, _ = client.request_raw("POST", "/v1/analyze", b"not json")
        assert status == 400
        obs = client.stats()["obs"]
        assert obs["errors_by_endpoint"]["/v1/analyze"] == 1


class TestEventLog:
    def test_traces_written_per_request(
        self, daemon_client, example_model, tmp_path
    ):
        daemon, client = daemon_client
        client.analyze(example_model)
        client.health()
        kinds = [
            e["kind"] for e in read_events(daemon.obs.event_log.path)
        ]
        assert kinds.count("trace") >= 2
        trace_events = [
            e
            for e in read_events(daemon.obs.event_log.path)
            if e["kind"] == "trace" and e["endpoint"] == "/v1/analyze"
        ]
        stages = {s["stage"] for s in trace_events[0]["spans"]}
        assert "store_lookup" in stages
        assert "batch_compute" in stages


class TestDetectEndpoint:
    def test_empty_body_runs_full_registry(self, daemon_client):
        _, client = daemon_client
        status, headers, body = client.request_full(
            "POST", "/v1/detect", b""
        )
        assert status == 200
        assert headers["x-repro-advisory"] == "true"
        report = json.loads(body)
        assert report["advisory_only"] is True
        assert report["n_records"] == 0
        assert "canonical_sha256" in report

    def test_unknown_detector_rejected(self, daemon_client):
        _, client = daemon_client
        status, body = client.detect_raw({"detectors": ["nope"]})
        assert status == 400
        assert "unknown detector" in json.loads(body)["error"]

    def test_bad_window_rejected(self, daemon_client):
        _, client = daemon_client
        status, _ = client.detect_raw({"window": "many"})
        assert status == 400

    def test_detect_subset(self, daemon_client, example_model):
        _, client = daemon_client
        client.analyze(example_model)
        report = client.detect(detectors=["verdict_drift"], window=1)
        assert [d["name"] for d in report["detectors"]] == ["verdict_drift"]
        assert report["n_records"] == 1


class TestByteIdentity:
    def test_bodies_identical_with_obs_disabled(self, example_model):
        daemon, thread, client = start_daemon(obs=False)
        try:
            status, headers, body = client.request_full(
                "POST", "/v1/analyze", json.dumps(example_model).encode()
            )
            assert status == 200
            direct = analyze(ControlTaskSystem.from_dict(example_model))
            assert body.decode("utf-8") == direct.report_json()
            # Trace ids stay on even when telemetry is off.
            assert headers["x-repro-trace-id"]
            assert client.stats()["obs"]["enabled"] is False
            # Detect still answers (empty window: nothing recorded).
            assert client.detect()["n_records"] == 0
        finally:
            stop_daemon(thread, client)

    def test_bodies_identical_with_obs_enabled(
        self, daemon_client, example_model
    ):
        _, client = daemon_client
        status, body = client.analyze_raw(example_model)
        assert status == 200
        direct = analyze(ControlTaskSystem.from_dict(example_model))
        assert body.decode("utf-8") == direct.report_json()


@pytest.mark.slow
class TestDriftEndToEnd:
    def test_seeded_drift_flagged_and_revalidated(self, tmp_path):
        daemon, thread, client = start_daemon(
            event_log=str(tmp_path / "events.jsonl")
        )
        try:
            stream = drifting_request_stream(20, n_tasks=5, seed=23)
            for system in stream:
                status, _ = client.analyze_raw(system.to_dict())
                assert status == 200
            report = client.detect(
                revalidate=True, horizon_periods=20, limit=2
            )
            names = [f["detector"] for f in report["findings"]]
            assert names == ["verdict_drift"]
            finding = report["findings"][0]
            assert finding["flagged_shas"]
            assert finding["severity"] in ("warning", "critical")
            revalidation = report["revalidation"]
            assert revalidation["revalidated"] == 2
            assert revalidation["skipped_unknown_models"] == []
            # Drift is a precursor signal: the flagged models are thin
            # but analytically sound, so simulation confirms stability.
            assert revalidation["cells"] == {"stable_confirmed": 2}
            # The same window yields byte-identical canonical findings.
            second = client.detect()
            for finding_again, finding_first in zip(
                second["findings"], report["findings"]
            ):
                assert finding_again == finding_first
        finally:
            stop_daemon(thread, client)
