"""Incremental-analysis guarantees of the memoised façade.

Two pillars (both ISSUE-6 acceptance criteria):

* **the incremental win** -- editing one task's WCET in a 12-task model
  and re-analysing through a warm memo recomputes at most 2 task
  subproblems (counter-verified; the exact number depends on where the
  edited task sits in the priority order);
* **byte-equivalence** -- memoised and fresh ``analyze()`` reports are
  byte-identical in canonical JSON across random edit sequences
  (hypothesis-driven) and across a shared memo reused over many edits.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import analyze
from repro.api.service import assign
from repro.memo import AnalysisMemo
from repro.rta.taskset import TaskSet

from _memo_population import random_population


def _edit_wcet(taskset: TaskSet, index: int, factor: float) -> TaskSet:
    """A copy of ``taskset`` with one task's WCET scaled (kept valid)."""
    tasks = [t.copy() for t in taskset]
    task = tasks[index]
    wcet = min(max(task.wcet * factor, task.bcet), task.period)
    tasks[index] = dataclasses.replace(task, wcet=wcet)
    return TaskSet(tasks)


def _edit_period(taskset: TaskSet, index: int, factor: float) -> TaskSet:
    tasks = [t.copy() for t in taskset]
    task = tasks[index]
    period = max(task.period * factor, task.wcet)
    tasks[index] = dataclasses.replace(task, period=period)
    return TaskSet(tasks)


def _recomputations(memo: AnalysisMemo, taskset: TaskSet) -> int:
    before = memo.stats()["recomputations"]
    analyze(taskset, memo=memo)
    return memo.stats()["recomputations"] - before


class TestIncrementalWin:
    def test_one_wcet_edit_of_12_task_model_recomputes_at_most_2(self):
        """The headline incremental bound, counter-verified.

        Editing the lowest-priority task touches only its own subproblem
        (its hp-set is unchanged, nobody's hp-set contains it): exactly 1
        recomputation.  Editing the second-lowest additionally
        invalidates the lowest task's hp-set: exactly 2.  Every other
        task of the warm 12-task model replays from the memo.
        """
        (taskset,) = random_population(n=12, count=1, seed=301)
        by_priority = sorted(taskset, key=lambda t: t.priority)
        lowest = list(taskset).index(by_priority[0])
        second = list(taskset).index(by_priority[1])

        memo = AnalysisMemo()
        warm_cost = _recomputations(memo, taskset)
        assert warm_cost == 12  # cold: every subproblem computed

        assert _recomputations(memo, _edit_wcet(taskset, lowest, 0.75)) == 1
        assert _recomputations(memo, _edit_wcet(taskset, second, 0.8)) == 2

    def test_editing_the_highest_priority_task_is_the_worst_case(self):
        """Sanity bound on the other extreme: everything below recomputes."""
        (taskset,) = random_population(n=12, count=1, seed=302)
        highest = list(taskset).index(
            max(taskset, key=lambda t: t.priority)
        )
        memo = AnalysisMemo()
        analyze(taskset, memo=memo)
        cost = _recomputations(memo, _edit_wcet(taskset, highest, 0.9))
        assert cost == 12  # its own entry + the 11 hp-sets containing it

    def test_repeat_analysis_of_unchanged_model_recomputes_nothing(self):
        (taskset,) = random_population(n=12, count=1, seed=303)
        memo = AnalysisMemo()
        analyze(taskset, memo=memo)
        assert _recomputations(memo, taskset) == 0


class TestByteEquivalence:
    def test_memoised_report_matches_fresh_on_population(self):
        memo = AnalysisMemo()
        for taskset in random_population(n=8, count=20, seed=304):
            fresh = analyze(taskset).report_json()
            memoised = analyze(taskset, memo=memo).report_json()
            assert memoised == fresh

    @settings(max_examples=30, deadline=None)
    @given(
        edits=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.sampled_from(["wcet", "period"]),
                st.floats(min_value=0.5, max_value=1.5),
            ),
            min_size=1,
            max_size=8,
        ),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_random_edit_sequences_stay_byte_identical(self, edits, seed):
        """Memoised vs fresh reports along a random edit trajectory.

        Each step edits one field of one task (validity-clamped) and
        re-analyses through the same warm memo; the canonical report
        bytes must equal a from-scratch analysis at every step.
        """
        (taskset,) = random_population(n=10, count=1, seed=400 + seed)
        memo = AnalysisMemo()
        current = taskset
        for index, field, factor in edits:
            if field == "wcet":
                current = _edit_wcet(current, index, factor)
            else:
                current = _edit_period(current, index, factor)
            fresh = analyze(current).report_json()
            memoised = analyze(current, memo=memo).report_json()
            assert memoised == fresh

    def test_assign_validation_memo_keeps_outcome_bytes_cold(self):
        """``validation_memo=`` must not perturb the canonical outcome.

        The serve daemon's mode: the search runs cold (``cache_hits`` is
        part of the canonical record), only the validation analysis rides
        the shared memo -- outcomes stay byte-identical across a warm
        memo and repeated edits.
        """
        (taskset,) = random_population(n=8, count=1, seed=305)
        memo = AnalysisMemo()
        for factor in (1.0, 0.9, 0.8, 0.9, 1.0):
            edited = _edit_wcet(taskset, 0, factor)
            cold = assign(edited, algorithm="audsley").outcome_json()
            warm = assign(
                edited, algorithm="audsley", validation_memo=memo
            ).outcome_json()
            assert warm == cold
