"""``AnalysisMemo.population_analysis``: the memo layered on the
population kernel tier (what the execution plane's worker memos use on
the batch-analysis path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memo import AnalysisMemo
from repro.memo.core import EvaluationCounter

from tests.memo._memo_population import random_taskset


def _population(seed=71, sets=7, n=6):
    rng = np.random.default_rng(seed)
    return [random_taskset(rng, n) for _ in range(sets)]


class TestPopulationAnalysis:
    def test_matches_sequential_taskset_analysis(self):
        tasksets = _population()
        sequential = [
            AnalysisMemo().taskset_analysis(ts) for ts in tasksets
        ]
        population = AnalysisMemo().population_analysis(tasksets)
        assert population == sequential

    def test_matches_popbatch_analyze_population(self):
        from repro.rta.popbatch import analyze_population

        tasksets = _population(seed=72)
        assert AnalysisMemo().population_analysis(
            tasksets
        ) == analyze_population(tasksets)

    def test_counters_match_sequentially_memoised_run(self):
        tasksets = _population(seed=73)
        # Duplicate a whole set: sequentially, its subproblems all hit.
        tasksets = tasksets + [tasksets[0]]

        sequential_memo = AnalysisMemo()
        sequential_counter = EvaluationCounter()
        sequential = [
            sequential_memo.taskset_analysis(ts, sequential_counter)
            for ts in tasksets
        ]

        population_memo = AnalysisMemo()
        population_counter = EvaluationCounter()
        population = population_memo.population_analysis(
            tasksets, population_counter
        )

        assert population == sequential
        assert population_counter.count == sequential_counter.count
        assert population_counter.hits == sequential_counter.hits
        assert (
            population_memo.stats()["cache_hits"]
            == sequential_memo.stats()["cache_hits"]
        )

    def test_warm_memo_answers_without_recomputation(self):
        tasksets = _population(seed=74)
        memo = AnalysisMemo()
        first = memo.population_analysis(tasksets)
        recomputed_before = memo.stats()["recomputations"]
        second = memo.population_analysis(tasksets)
        assert second == first
        assert memo.stats()["recomputations"] == recomputed_before

    def test_bounded_memo_still_correct(self):
        tasksets = _population(seed=75)
        bounded = AnalysisMemo(max_entries=4).population_analysis(tasksets)
        fresh = AnalysisMemo().population_analysis(tasksets)
        assert bounded == fresh


class TestTaskVerdictMemoRoute:
    def test_memo_routed_verdict_bit_identical(self):
        from repro.api.service import task_verdict

        rng = np.random.default_rng(81)
        memo = AnalysisMemo()
        for _ in range(5):
            taskset = random_taskset(rng, 6)
            for task in taskset:
                hp = taskset.higher_priority(task)
                plain = task_verdict(task, hp)
                routed = task_verdict(task, hp, memo=memo)
                assert routed == plain
                # And again from the warm memo.
                assert task_verdict(task, hp, memo=memo) == plain

    def test_explicit_deadline_takes_scalar_path(self):
        from repro.api.service import task_verdict

        rng = np.random.default_rng(82)
        taskset = random_taskset(rng, 5)
        task = next(iter(taskset))
        memo = AnalysisMemo()
        verdict = task_verdict(
            task,
            taskset.higher_priority(task),
            deadline=task.period / 2,
            memo=memo,
        )
        # Nothing entered the memo: explicit deadlines are not memoisable.
        assert memo.stats()["evaluations"] == 0
        assert verdict == task_verdict(
            task, taskset.higher_priority(task), deadline=task.period / 2
        )
