"""Core semantics of the shared analysis memo.

The search-context suite (``tests/search/test_context.py``) pins the
memo/counter semantics the engine inherited; this suite covers what the
promotion to :mod:`repro.memo` added: the deprecation shim, bounded
(LRU) operation, consistent ``stats()`` snapshots, and thread safety of
the aggregate counters (the serve daemon shares one memo between its
event loop and dispatch worker).
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ModelError
from repro.memo import AnalysisMemo, EvaluationCounter, MemoRun
from repro.rta.taskset import TaskSet
from repro.search import SearchContext, SearchRun, run_strategy

from _memo_population import random_population


class TestDeprecatedAlias:
    def test_searchcontext_warns_and_is_an_analysis_memo(self):
        with pytest.warns(DeprecationWarning, match="AnalysisMemo"):
            context = SearchContext()
        assert isinstance(context, AnalysisMemo)

    def test_searchrun_is_memo_run(self):
        assert SearchRun is MemoRun

    def test_analysis_memo_does_not_warn(self, recwarn):
        AnalysisMemo()
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_deprecated_context_still_drives_a_strategy(self):
        (taskset,) = random_population(n=4, count=1, seed=101)
        with pytest.warns(DeprecationWarning):
            context = SearchContext()
        result = run_strategy("audsley", taskset, context=context)
        fresh = run_strategy("audsley", taskset)
        assert result.priorities == fresh.priorities
        assert result.evaluations == fresh.evaluations

    def test_memo_and_context_aliases_conflict_rejected(self):
        (taskset,) = random_population(n=3, count=1, seed=102)
        with pytest.raises(ModelError):
            run_strategy(
                "audsley", taskset, memo=AnalysisMemo(), context=AnalysisMemo()
            )

    def test_run_exposes_memo_alias(self):
        memo = AnalysisMemo()
        run = memo.run()
        assert run.memo is memo
        assert run.context is memo


class TestBoundedMemo:
    def test_max_entries_must_be_positive(self):
        with pytest.raises(ModelError):
            AnalysisMemo(max_entries=0)
        with pytest.raises(ModelError):
            AnalysisMemo(max_entries=-4)

    def test_lru_eviction_bounds_the_memo(self):
        population = random_population(n=6, count=8, seed=103)
        memo = AnalysisMemo(max_entries=16)
        for taskset in population:
            run_strategy("audsley", taskset, memo=memo)
        stats = memo.stats()
        assert stats["memo_entries"] <= 16
        assert stats["max_entries"] == 16
        assert stats["evictions"] > 0
        # Interning stays unbounded: records are tiny, and keeping them
        # preserves id stability for entries still in the memo.
        assert stats["interned_tasks"] == 6 * 8

    def test_evicted_entries_recompute_to_identical_values(self):
        (taskset,) = random_population(n=5, count=1, seed=104)
        unbounded = AnalysisMemo()
        reference = unbounded.taskset_analysis(taskset)
        tiny = AnalysisMemo(max_entries=2)
        first = tiny.taskset_analysis(taskset)
        # Every entry evicted by now (5 subproblems through 2 slots) --
        # a second pass recomputes rather than replays, same floats.
        counter = EvaluationCounter()
        second = tiny.taskset_analysis(taskset, counter)
        assert counter.hits < counter.count  # genuinely recomputed
        for name in reference.times:
            assert first.times[name] == reference.times[name]
            assert second.times[name] == reference.times[name]
        assert tiny.stats()["evictions"] > 0

    def test_unbounded_memo_never_evicts(self):
        population = random_population(n=5, count=6, seed=105)
        memo = AnalysisMemo()
        for taskset in population:
            run_strategy("audsley", taskset, memo=memo)
        stats = memo.stats()
        assert stats["max_entries"] is None
        assert stats["evictions"] == 0


class TestStatsSnapshot:
    def test_snapshot_keys_and_identities(self):
        memo = AnalysisMemo()
        (taskset,) = random_population(n=4, count=1, seed=106)
        run = memo.run()
        ids = memo.intern_all(taskset)
        run.level_slacks(ids)
        run.level_slacks(ids)
        stats = memo.stats()
        assert set(stats) == {
            "interned_tasks",
            "memo_entries",
            "max_entries",
            "evictions",
            "evaluations",
            "cache_hits",
            "recomputations",
            "kernel_seconds",
        }
        assert stats["evaluations"] == 8
        assert stats["cache_hits"] == 4
        assert stats["recomputations"] == 4
        assert stats["memo_entries"] == 4
        assert stats["kernel_seconds"] > 0.0

    def test_totals_aggregate_across_concurrent_runs(self):
        """No lost counter updates when runs execute on many threads.

        This is the serve-daemon shape: one process-lifetime memo,
        queries arriving from more than one thread.  The shared totals
        must equal the sum of the per-run counters exactly -- a lost
        update would show up as a shortfall.
        """
        population = random_population(n=6, count=12, seed=107)
        memo = AnalysisMemo()
        counters = []
        lock = threading.Lock()

        def worker(taskset: TaskSet) -> None:
            counter = EvaluationCounter()
            for _ in range(25):
                memo.taskset_analysis(taskset, counter)
            with lock:
                counters.append(counter)

        threads = [
            threading.Thread(target=worker, args=(taskset,))
            for taskset in population
            for _ in range(2)  # two threads per task set: real contention
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = memo.stats()
        assert stats["evaluations"] == sum(c.count for c in counters)
        assert stats["cache_hits"] == sum(c.hits for c in counters)
        assert stats["evaluations"] == 12 * 2 * 25 * 6
        # Each distinct subproblem was computed at most once per *racing
        # pair*; with put-if-absent the memo holds exactly one entry per
        # (task, hp-set) of the population.
        assert stats["memo_entries"] == 12 * 6
