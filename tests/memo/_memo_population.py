"""Deterministic priority-assigned populations for the memo tests."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.benchgen.uunifast import uunifast
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet


def random_taskset(rng: np.random.Generator, n: int) -> TaskSet:
    """One priority-assigned UUniFast control task set.

    Mirrors the population of ``tests/api/test_equivalence.py``: mixed
    periods, a majority of tasks carrying linear stability bounds, and a
    random (distinct) priority permutation, so analysis is well-defined
    without running an assignment search first.
    """
    utilization = float(rng.uniform(0.3, 0.95))
    shares = uunifast(n, utilization, rng)
    periods = rng.choice([1.0, 2.0, 2.5, 4.0, 5.0, 8.0, 10.0, 20.0], size=n)
    order = rng.permutation(n)
    tasks = []
    for k, (share, period) in enumerate(zip(shares, periods)):
        wcet = min(max(share * period, 1e-6), period)
        bcet = max(wcet * float(rng.uniform(0.2, 1.0)), 1e-9)
        stability = None
        if rng.uniform() < 0.7:
            stability = LinearStabilityBound(
                a=1.0 + float(rng.uniform(0.0, 1.5)),
                b=float(period) * float(rng.uniform(0.1, 1.2)),
            )
        tasks.append(
            Task(
                name=f"t{k}",
                period=float(period),
                wcet=float(wcet),
                bcet=float(bcet),
                priority=int(order[k]) + 1,
                stability=stability,
            )
        )
    return TaskSet(tasks)


def random_population(*, n: int, count: int, seed: int) -> List[TaskSet]:
    """``count`` task sets of ``n`` tasks, deterministic in ``seed``."""
    rng = np.random.default_rng([20260808, seed])
    return [random_taskset(rng, n) for _ in range(count)]
