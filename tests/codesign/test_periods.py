"""Tests of the period-assignment co-design."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.assignment.validate import validate_assignment
from repro.codesign.periods import (
    ControlLoopSpec,
    assign_periods,
    candidate_table,
)
from repro.errors import ModelError


@pytest.fixture(scope="module")
def two_loops():
    return [
        ControlLoopSpec(name="servo", plant="dc_servo", wcet=0.0012),
        ControlLoopSpec(name="pend", plant="inverted_pendulum", wcet=0.004),
    ]


class TestCandidateTable:
    def test_sorted_by_cost(self, two_loops):
        table = candidate_table(two_loops[0], points=4)
        costs = [c.cost for c in table]
        assert costs == sorted(costs)

    def test_periods_hold_the_wcet(self, two_loops):
        for candidate in candidate_table(two_loops[1], points=4):
            assert candidate.period >= two_loops[1].wcet

    def test_explicit_menu_respected(self):
        loop = ControlLoopSpec(
            name="x", plant="dc_servo", wcet=0.001,
            candidate_periods=(0.004, 0.008),
        )
        table = candidate_table(loop)
        assert sorted(c.period for c in table) == [0.004, 0.008]

    def test_oversized_wcet_rejected(self):
        loop = ControlLoopSpec(name="x", plant="dc_servo", wcet=0.5)
        with pytest.raises(ModelError):
            candidate_table(loop)


class TestAssignPeriods:
    def test_finds_valid_design(self, two_loops):
        result = assign_periods(two_loops, points=4)
        assert result is not None
        assigned = result.taskset(two_loops)
        assert validate_assignment(assigned).valid

    def test_result_is_optimal_over_grid(self, two_loops):
        """Best-first must return the cheapest valid combination --
        verified against brute-force enumeration of the same grids."""
        from repro.assignment.backtracking import assign_backtracking
        from repro.rta.taskset import Task, TaskSet

        result = assign_periods(two_loops, points=3)
        tables = [candidate_table(loop, points=3) for loop in two_loops]
        best_brute = None
        for combo in itertools.product(*tables):
            if not all(np.isfinite(c.cost) for c in combo):
                continue
            tasks = TaskSet(
                [
                    Task(
                        name=loop.name,
                        period=c.period,
                        wcet=loop.wcet,
                        bcet=loop.wcet * loop.bcet_fraction,
                        stability=c.bound,
                    )
                    for loop, c in zip(two_loops, combo)
                ]
            )
            if tasks.utilization >= 1.0:
                continue
            if assign_backtracking(tasks).priorities is None:
                continue
            total = sum(c.cost for c in combo)
            if best_brute is None or total < best_brute:
                best_brute = total
        assert result is not None and best_brute is not None
        assert result.total_cost == pytest.approx(best_brute)

    def test_infeasible_budget_returns_none(self):
        # Demands so heavy no combination is schedulable.
        loops = [
            ControlLoopSpec(
                name="a", plant="dc_servo", wcet=0.004,
                candidate_periods=(0.006,),
            ),
            ControlLoopSpec(
                name="b", plant="dc_servo", wcet=0.004,
                candidate_periods=(0.006,),
            ),
        ]
        assert assign_periods(loops) is None

    def test_duplicate_names_rejected(self, two_loops):
        with pytest.raises(ModelError):
            assign_periods([two_loops[0], two_loops[0]])

    def test_combination_budget_respected(self, two_loops):
        result = assign_periods(two_loops, points=4, max_combinations=1)
        # Either the very first (cheapest) combo is valid, or None.
        if result is not None:
            assert result.combinations_checked == 1

    def test_taskset_roundtrip(self, two_loops):
        result = assign_periods(two_loops, points=3)
        ts = result.taskset(two_loops)
        assert {t.name for t in ts} == {"servo", "pend"}
        for loop in two_loops:
            task = ts.by_name(loop.name)
            assert task.period == pytest.approx(result.chosen[loop.name].period)


@pytest.mark.sweep
class TestParallelCandidateTables:
    def test_jobs_match_serial(self, two_loops):
        serial = assign_periods(two_loops, points=3, jobs=1)
        parallel = assign_periods(two_loops, points=3, jobs=2)
        assert serial is not None and parallel is not None
        assert parallel.total_cost == pytest.approx(serial.total_cost)
        assert parallel.priorities == serial.priorities
        assert {
            name: c.period for name, c in parallel.chosen.items()
        } == {name: c.period for name, c in serial.chosen.items()}
