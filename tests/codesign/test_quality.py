"""Tests of assignment control-quality evaluation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.assignment.backtracking import assign_backtracking
from repro.benchgen.taskgen import BenchmarkConfig, generate_control_taskset
from repro.codesign.quality import (
    assignment_control_cost,
    best_quality_assignment,
    task_control_cost,
)
from repro.errors import ModelError
from repro.jittermargin.linearbound import stability_bound_for_plant
from repro.control.plants import get_plant
from repro.rta.taskset import Task, TaskSet


def _control_task(name, plant_name, period, wcet, bcet, priority=None):
    plant = get_plant(plant_name)
    return Task(
        name=name,
        period=period,
        wcet=wcet,
        bcet=bcet,
        priority=priority,
        stability=stability_bound_for_plant(plant, period),
        plant_name=plant_name,
    )


@pytest.fixture(scope="module")
def small_system():
    return TaskSet(
        [
            _control_task("servo", "dc_servo", 0.006, 0.0010, 0.0004, priority=2),
            _control_task("pend", "inverted_pendulum", 0.020, 0.0030, 0.0015, priority=1),
        ]
    )


class TestTaskControlCost:
    def test_finite_for_modest_interface(self, small_system):
        task = small_system.by_name("servo")
        cost = task_control_cost(task, 0.0005, 0.0005)
        assert math.isfinite(cost) and cost > 0

    def test_monotone_in_jitter(self, small_system):
        task = small_system.by_name("servo")
        low = task_control_cost(task, 0.0005, 0.0005)
        high = task_control_cost(task, 0.0005, 0.003)
        assert high > low

    def test_infinite_past_the_period(self, small_system):
        task = small_system.by_name("servo")
        assert task_control_cost(task, 0.004, 0.004) == float("inf")

    def test_requires_plant(self):
        bare = Task(name="x", period=1.0, wcet=0.1, priority=1)
        with pytest.raises(ModelError):
            task_control_cost(bare, 0.0, 0.0)


class TestAssignmentQuality:
    def test_valid_assignment_has_finite_total(self, small_system):
        quality = assignment_control_cost(small_system)
        assert quality.feasible
        assert set(quality.per_task) == {"servo", "pend"}
        assert quality.total == pytest.approx(sum(quality.per_task.values()))

    def test_priority_changes_quality(self, small_system):
        flipped = small_system.with_priorities({"servo": 1, "pend": 2})
        base = assignment_control_cost(small_system)
        alt = assignment_control_cost(flipped)
        # Both may be feasible, but the costs must differ: priorities move
        # the (L, J) interfaces, and the loops are not symmetric.
        if alt.feasible and base.feasible:
            assert alt.total != pytest.approx(base.total)

    def test_unstable_assignment_is_infinite(self):
        # A hog delays the servo beyond its stability budget at h = 12 ms.
        hog = Task(name="hog", period=0.012, wcet=0.009, bcet=0.009, priority=2)
        servo = _control_task("servo", "dc_servo", 0.012, 0.0005, 0.0005, priority=1)
        quality = assignment_control_cost(TaskSet([hog, servo]))
        assert not quality.feasible
        assert quality.per_task["servo"] == float("inf")


class TestBestQualityAssignment:
    def test_matches_feasibility_of_backtracking(self):
        rng = np.random.default_rng([505, 4, 1])
        ts = generate_control_taskset(4, rng, config=BenchmarkConfig())
        best = best_quality_assignment(ts)
        feasible_by_search = assign_backtracking(ts).priorities is not None
        assert (best is not None) == feasible_by_search

    def test_optimal_beats_or_ties_heuristic(self, small_system):
        unassigned = TaskSet(t.with_priority(None) for t in small_system)
        best = best_quality_assignment(unassigned)
        assert best is not None
        result = assign_backtracking(unassigned)
        heuristic_quality = assignment_control_cost(result.apply_to(unassigned))
        assert best[1].total <= heuristic_quality.total + 1e-12

    def test_size_cap(self):
        tasks = TaskSet(
            [
                Task(name=f"t{i}", period=1.0 + i, wcet=0.01, priority=None)
                for i in range(8)
            ]
        )
        with pytest.raises(ModelError):
            best_quality_assignment(tasks)
