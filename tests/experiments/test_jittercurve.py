"""Tests of the extension experiment: expected cost vs jitter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.jittercurve import run_jittercurve


@pytest.fixture(scope="module")
def result():
    return run_jittercurve(points=8)


class TestJitterCurve:
    def test_default_loop_is_fig4s(self, result):
        assert result.plant_name == "dc_servo"
        assert result.h == pytest.approx(0.006)

    def test_cost_is_increasing_in_jitter(self, result):
        finite = np.isfinite(result.costs)
        assert np.all(np.diff(result.costs[finite]) > 0)

    def test_margin_consistency(self, result):
        # Everything the small-gain margin certifies must be MS stable.
        assert result.consistent

    def test_linear_budget_inside_margin(self, result):
        assert result.linear_budget <= result.margin + 1e-12

    def test_cost_grows_materially(self, result):
        assert result.cost_blowup_factor > 1.2

    def test_render(self, result):
        text = result.render()
        assert "expected LQG cost vs jitter" in text
        assert "margin-consistent: True" in text
