"""Tests of the Figure 4 driver (stability curve + linear bound)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.fig4 import run_fig4


@pytest.fixture(scope="module")
def result():
    return run_fig4(points=25)


class TestFig4:
    def test_defaults_match_paper_setup(self, result):
        assert result.plant_name == "dc_servo"
        assert result.h == pytest.approx(0.006)

    def test_curve_decreasing(self, result):
        finite = ~np.isnan(result.curve.margins)
        assert np.all(np.diff(result.curve.margins[finite]) <= 1e-12)

    def test_linear_bound_is_safe(self, result):
        assert result.bound_is_safe

    def test_bound_coefficients_in_paper_regime(self, result):
        assert result.bound.a >= 1.0
        assert result.bound.b > 0.0
        # The servo tolerates latency on the order of its period.
        assert 0.5 * result.h < result.bound.b < 3.0 * result.h

    def test_margin_at_zero_latency_is_milliseconds(self, result):
        assert 0.001 < result.curve.margins[0] < 0.03

    def test_render_contains_constraint(self, result):
        text = result.render()
        assert "L + " in text
        assert "safe: True" in text

    def test_linear_bound_jitter_clips_at_zero(self, result):
        assert result.linear_bound_jitter(result.bound.b + 1.0) == 0.0
