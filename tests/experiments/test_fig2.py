"""Tests of the Figure 2 driver (cost vs sampling period)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.plants import get_plant
from repro.experiments.fig2 import Fig2Result, run_fig2


@pytest.fixture(scope="module")
def result():
    # Window around the first pathological period (0.25 s for the 2 Hz
    # resonance) keeps the test fast while exercising all phenomena; the
    # 0.01 s grid spacing places a sample exactly on the resonance.
    return run_fig2(h_min=0.05, h_max=0.45, points=41)


class TestFig2:
    def test_costs_aligned_with_periods(self, result):
        assert result.costs.shape == result.periods.shape

    def test_phenomenon_1_pathological_spike(self, result):
        # A spike cluster near h = 0.25 s.
        assert any(0.2 < s < 0.3 for s in result.spike_periods)

    def test_phenomenon_2_non_monotonicity(self, result):
        assert result.monotonicity_violations > 0

    def test_phenomenon_3_increasing_trend(self, result):
        assert result.trend_correlation > 0.5

    def test_render_mentions_all_three(self, result):
        text = result.render()
        assert "monotonicity violations" in text
        assert "rank correlation" in text
        assert "spikes" in text

    def test_exact_pathological_period_is_infinite(self):
        plant = get_plant("harmonic_oscillator")
        omega = 4.0 * np.pi
        res = run_fig2(
            plant=plant,
            h_min=np.pi / omega,
            h_max=np.pi / omega,
            points=1,
        )
        assert res.costs[0] == float("inf")

    def test_well_behaved_plant_has_no_spikes(self):
        res = run_fig2(
            plant=get_plant("dc_servo"), h_min=0.002, h_max=0.01, points=25
        )
        assert res.spike_periods == ()
        assert res.monotonicity_violations == 0
