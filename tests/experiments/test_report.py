"""Tests of the plain-text rendering helpers."""

from __future__ import annotations

import math

from repro.experiments.report import ascii_logplot, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].endswith("long_header")
        # Right alignment: all rows same width.
        assert len(set(len(l) for l in lines)) == 1

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[float("inf")], [float("nan")], [0.0]])
        assert "inf" in text
        assert "-" in text
        assert "0" in text

    def test_scientific_for_extremes(self):
        text = format_table(["v"], [[1.23e8], [4.56e-7]])
        assert "e+08" in text
        assert "e-07" in text

    def test_strings_pass_through(self):
        text = format_table(["s"], [["hello"]])
        assert "hello" in text


class TestAsciiLogplot:
    def test_renders_bars(self):
        text = ascii_logplot([1.0, 2.0], [10.0, 1000.0], title="t")
        assert "#" in text
        assert text.splitlines()[0] == "t"

    def test_inf_marked(self):
        text = ascii_logplot([1.0, 2.0], [10.0, float("inf")])
        assert "INF" in text

    def test_all_infinite_degenerates_gracefully(self):
        text = ascii_logplot([1.0], [float("inf")])
        assert "no finite data" in text

    def test_larger_values_get_longer_bars(self):
        text = ascii_logplot([1.0, 2.0], [1.0, 10000.0], width=40)
        rows = text.splitlines()[2:]
        assert rows[1].count("#") > rows[0].count("#")
