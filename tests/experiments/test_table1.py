"""Tests of the Table I driver (invalid solutions of Unsafe Quadratic)."""

from __future__ import annotations

import pytest

from repro.experiments.table1 import PAPER_TABLE1, Table1Result, run_table1


class TestTable1Result:
    def test_percentages(self):
        result = Table1Result(
            benchmarks_per_count=100,
            totals={4: 100, 8: 100},
            invalid={4: 2, 8: 0},
        )
        assert result.invalid_percent(4) == pytest.approx(2.0)
        assert result.invalid_percent(8) == 0.0

    def test_render_includes_paper_column(self):
        result = Table1Result(
            benchmarks_per_count=10, totals={4: 10}, invalid={4: 0}
        )
        assert "paper %" in result.render()

    def test_paper_reference_values(self):
        assert PAPER_TABLE1[4] == pytest.approx(0.38)
        assert PAPER_TABLE1[20] == 0.0


class TestTable1Run:
    @pytest.fixture(scope="class")
    def small_run(self):
        return run_table1(task_counts=(4, 8), benchmarks=60, seed=77)

    def test_totals_match_request(self, small_run):
        assert small_run.totals == {4: 60, 8: 60}

    def test_invalid_rate_is_small(self, small_run):
        # The calibrated generator keeps failures rare (paper: <= 0.38%);
        # with 60 samples we only assert the right order of magnitude.
        for n in (4, 8):
            assert small_run.invalid_percent(n) <= 5.0
