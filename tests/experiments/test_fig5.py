"""Tests of the Figure 5 driver (runtime comparison)."""

from __future__ import annotations

import pytest

from repro.experiments.fig5 import run_fig5

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def result():
    return run_fig5(task_counts=(4, 8, 12), benchmarks=12, seed=3)


class TestFig5:
    def test_series_cover_all_counts(self, result):
        for n in (4, 8, 12):
            assert n in result.unsafe.mean_seconds
            assert n in result.backtracking.mean_seconds

    def test_unsafe_quadratic_eval_count_is_exact(self, result):
        for n in (4, 8, 12):
            assert result.unsafe.mean_evaluations[n] == pytest.approx(
                n * (n + 1) / 2
            )

    def test_backtracking_growth_is_near_quadratic(self, result):
        # Average-case thesis of the paper: ~n^2 evaluations.  Allow a
        # wide but sub-exponential corridor on small samples.
        exponent = result.quadratic_fit_exponent("backtracking")
        assert 1.3 < exponent < 3.0

    def test_backtracking_rarely_backtracks(self, result):
        total_runs = 12 * 3
        total_backtracked = sum(result.backtracking.backtrack_runs.values())
        assert total_backtracked <= 0.2 * total_runs

    def test_render_mentions_enumeration_strawman(self, result):
        assert "20!" in result.render() or "1e18" in result.render()
