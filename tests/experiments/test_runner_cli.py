"""Tests of the experiment runner and the CLI wiring."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.runner import EXPERIMENTS, run_experiment


class TestRunner:
    def test_registry_covers_all_artifacts(self):
        assert {"fig2", "fig4", "table1", "fig5", "census"} <= set(EXPERIMENTS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_run_experiment_renders(self):
        report = run_experiment("fig4", points=9)
        assert "Figure 4" in report
        assert "completed in" in report


class TestCli:
    def test_fig4_subcommand(self, capsys):
        assert main(["fig4", "--points", "9"]) == 0
        out = capsys.readouterr().out
        assert "stability curve" in out

    def test_fig2_subcommand(self, capsys):
        assert main(["fig2", "--points", "12", "--h-min", "0.05", "--h-max", "0.2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_table1_subcommand(self, capsys):
        assert main(["table1", "--benchmarks", "5"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_census_subcommand(self, capsys):
        assert main(["census", "--benchmarks", "5"]) == 0
        assert "census" in capsys.readouterr().out.lower()

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
