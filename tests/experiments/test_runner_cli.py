"""Tests of the experiment runner and the CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.runner import (
    EXPERIMENTS,
    REDUCERS,
    SWEEPS,
    ExperimentRun,
    run_experiment,
)


class TestRunner:
    def test_registry_covers_all_artifacts(self):
        assert {"fig2", "fig4", "table1", "fig5", "census"} <= set(EXPERIMENTS)

    def test_sweep_registries_align(self):
        assert set(SWEEPS) == set(EXPERIMENTS)
        assert set(REDUCERS) == set(EXPERIMENTS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_unknown_kwargs_rejected_up_front(self):
        with pytest.raises(TypeError, match="unknown arguments.*typo_points"):
            run_experiment("fig4", typo_points=9)

    def test_run_experiment_returns_timed_result(self):
        run = run_experiment("fig4", points=9)
        assert isinstance(run, ExperimentRun)
        assert run.name == "fig4"
        assert run.elapsed_seconds > 0.0
        report = run.render()
        assert "Figure 4" in report
        assert "completed in" in report


class TestCli:
    def test_fig4_subcommand(self, capsys):
        assert main(["fig4", "--points", "9"]) == 0
        out = capsys.readouterr().out
        assert "stability curve" in out

    def test_fig2_subcommand(self, capsys):
        assert main(["fig2", "--points", "12", "--h-min", "0.05", "--h-max", "0.2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_table1_subcommand(self, capsys):
        assert main(["table1", "--benchmarks", "5"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_census_subcommand(self, capsys):
        assert main(["census", "--benchmarks", "5"]) == 0
        assert "census" in capsys.readouterr().out.lower()

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_jobs_flag_accepted(self, capsys):
        assert main(["table1", "--benchmarks", "3", "--jobs", "1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_jobs_auto_accepted(self, capsys):
        assert main(["table1", "--benchmarks", "3", "--jobs", "auto"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_jobs_zero_means_auto(self, capsys):
        assert main(["table1", "--benchmarks", "3", "--jobs", "0"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_jobs_garbage_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--benchmarks", "3", "--jobs", "many"])
        with pytest.raises(SystemExit):
            main(["table1", "--benchmarks", "3", "--jobs", "-2"])


@pytest.mark.scenario
class TestScenariosCli:
    def test_list_shows_catalogue(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper_priority_raise" in out
        assert "smoke_single_loop" in out
        assert "Registered scenarios" in out

    def test_run_prints_analytic_verdicts(self, capsys):
        assert main(
            ["scenarios", "run", "paper_priority_raise", "--instances", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "UNSTABLE" in out
        assert "analytic verdict" in out

    def test_validate_smoke_scenario(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        argv = [
            "scenarios", "validate", "smoke_single_loop",
            "--instances", "2", "--horizon-periods", "40",
            "--jobs", "auto", "--out", str(out_file),
        ]
        assert main(argv) == 0
        printed = capsys.readouterr().out
        assert "verdict: OK" in printed
        report = json.loads(out_file.read_text())
        assert report["ok"] is True
        assert report["cells"]["stable_confirmed"] == 2

    def test_validate_requires_name_or_all(self, capsys):
        assert main(["scenarios", "validate"]) == 2

    def test_unknown_scenario_errors(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError, match="known scenarios"):
            main(["scenarios", "run", "nope"])


@pytest.mark.sweep
class TestSweepCli:
    def test_sweep_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "fig4.json"
        assert main(["sweep", "fig4", "--points", "9", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "Figure 4" in printed
        assert "canonical sha256" in printed
        artifact = json.loads(out.read_text())
        assert artifact["name"] == "fig4"
        assert len(artifact["records"]) == 9
        assert artifact["canonical_sha256"]

    def test_sweep_scenarios_target(self, tmp_path, capsys):
        out = tmp_path / "scen.json"
        argv = [
            "sweep", "scenarios", "--scenario", "smoke_single_loop",
            "--instances", "2", "--horizon-periods", "40", "--out", str(out),
        ]
        assert main(argv) == 0
        printed = capsys.readouterr().out
        assert "verdict: OK" in printed
        artifact = json.loads(out.read_text())
        assert artifact["name"] == "scenario-smoke_single_loop"
        assert len(artifact["records"]) == 2

    def test_sweep_cache_resume(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = [
            "sweep", "table1", "--benchmarks", "2",
            "--cache-dir", str(cache), "--resume",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache hits=0" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache hits=1" in second
