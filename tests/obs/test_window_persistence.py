"""ReportWindow persistence: snapshot on shutdown, reload on start.

Covers the raw ``to_state``/``restore``/``save``/``load`` round trip
(including the non-finite ``min_rel_slack`` sentinel encoding), the
corrupt-file discipline (never fatal, start empty), and the daemon-level
``--window-file`` wiring across a real restart.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.window import ReportWindow
from repro.serve import (
    AnalysisDaemon,
    ServeClientError,
    run_daemon_in_thread,
    wait_until_ready,
)

pytestmark = pytest.mark.obs


def _fill(window: ReportWindow, n: int = 5) -> None:
    for k in range(n):
        window.record(
            f"sha-{k}",
            {
                "name": f"system-{k}",
                "n_tasks": 3,
                "utilization": 0.5,
                "schedulable": True,
                "stable": k % 2 == 0,
                "min_rel_slack": float("-inf") if k == 0 else 0.25,
            },
            source="computed",
            latency_seconds=0.001 * (k + 1),
        )
    window.remember_model("sha-0", {"name": "system-0", "tasks": []})
    window.remember_summary("sha-0", {"stable": True})


class TestRoundTrip:
    def test_state_round_trips_records_and_maps(self):
        window = ReportWindow(max_entries=16)
        _fill(window)
        state = window.to_state()
        restored = ReportWindow(max_entries=16)
        assert restored.restore(state) == 5
        assert restored.snapshot() == window.snapshot()
        assert restored.model_for("sha-0") == window.model_for("sha-0")
        assert restored.summary_for("sha-0") == {"stable": True}
        assert restored.total_recorded == window.total_recorded

    def test_nonfinite_slack_survives_json(self, tmp_path):
        window = ReportWindow(max_entries=16)
        _fill(window)
        path = str(tmp_path / "window.json")
        assert window.save(path) == 5
        with open(path) as handle:
            raw = json.load(handle)  # plain JSON: sentinels, no NaN/Inf
        assert raw["records"][0]["min_rel_slack"] == "-Infinity"
        restored = ReportWindow(max_entries=16)
        assert restored.load(path) == 5
        assert restored.snapshot()[0]["min_rel_slack"] == -math.inf

    def test_sequence_continues_after_restore(self):
        window = ReportWindow(max_entries=16)
        _fill(window)
        restored = ReportWindow(max_entries=16)
        restored.restore(window.to_state())
        entry = restored.record("sha-new", {}, source="computed")
        assert entry["seq"] == 6  # strictly after the restored records

    def test_restore_clamps_to_capacity(self):
        window = ReportWindow(max_entries=16)
        _fill(window, n=10)
        small = ReportWindow(max_entries=4)
        assert small.restore(window.to_state()) == 4
        assert [r["sha"] for r in small.snapshot()] == [
            "sha-6",
            "sha-7",
            "sha-8",
            "sha-9",
        ]


class TestCorruption:
    def test_missing_file_restores_nothing(self, tmp_path):
        window = ReportWindow()
        assert window.load(str(tmp_path / "absent.json")) == 0
        assert len(window) == 0

    def test_corrupt_file_restores_nothing(self, tmp_path):
        path = tmp_path / "window.json"
        path.write_text("{not json")
        window = ReportWindow()
        assert window.load(str(path)) == 0

    def test_wrong_format_stamp_restores_nothing(self, tmp_path):
        path = tmp_path / "window.json"
        path.write_text(json.dumps({"format": "other/9", "records": []}))
        window = ReportWindow()
        assert window.load(str(path)) == 0


class TestDaemonRestart:
    def test_window_survives_daemon_restart(self, tmp_path, example_model):
        window_file = str(tmp_path / "window.json")

        def serve_once(expect_restored: int) -> int:
            daemon = AnalysisDaemon(
                port=0, batch_window=0.002, window_file=window_file
            )
            thread = run_daemon_in_thread(daemon)
            client = wait_until_ready(daemon.host, daemon.port)
            stats = client.stats()
            assert stats["window_file"]["path"] == window_file
            assert (
                stats["window_file"]["records_restored"] == expect_restored
            )
            status, _ = client.analyze_raw(example_model)
            assert status == 200
            recorded = client.stats()["obs"]["window"]["total_recorded"]
            client.shutdown()
            thread.join(timeout=10)
            return recorded

        first = serve_once(expect_restored=0)
        assert first >= 1
        second = serve_once(expect_restored=first)
        assert second == first + 1

    def test_no_window_file_means_no_snapshot(self, tmp_path):
        daemon = AnalysisDaemon(port=0, batch_window=0.002)
        thread = run_daemon_in_thread(daemon)
        client = wait_until_ready(daemon.host, daemon.port)
        assert client.stats()["window_file"] is None
        client.shutdown()
        thread.join(timeout=10)
        assert list(tmp_path.iterdir()) == []


@pytest.fixture(scope="module")
def example_model():
    import os

    path = os.path.join(
        os.path.dirname(__file__), "..", "..", "examples", "system.json"
    )
    with open(path) as handle:
        return json.load(handle)
