"""Unit tests of the dependency-free metrics core (:mod:`repro.obs.metrics`).

The exposition format matters as much as the numbers: the CI smoke and
any real Prometheus scraper parse ``render()`` output, so these tests
pin the text-format invariants (HELP/TYPE headers, label escaping,
summary quantile lines) alongside the arithmetic.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    StreamingHistogram,
    default_registry,
    percentile,
    render_stats_gauges,
    sanitise_metric_name,
)

pytestmark = pytest.mark.obs


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("requests_total", "Requests.", ("endpoint",))
        counter.inc(endpoint="/v1/analyze")
        counter.inc(2.0, endpoint="/v1/analyze")
        counter.inc(endpoint="/v1/assign")
        assert counter.value(endpoint="/v1/analyze") == 3.0
        assert counter.value(endpoint="/v1/assign") == 1.0
        assert counter.value(endpoint="/v1/unknown") == 0.0

    def test_unlabelled_counter(self, registry):
        counter = registry.counter("ticks_total", "Ticks.")
        counter.inc()
        counter.inc()
        assert counter.value() == 2.0

    def test_wrong_label_set_rejected(self, registry):
        counter = registry.counter("requests_total", "Requests.", ("endpoint",))
        with pytest.raises(ValueError):
            counter.inc(verb="GET")
        with pytest.raises(ValueError):
            counter.inc()

    def test_render_format(self, registry):
        counter = registry.counter(
            "requests_total", "Requests served.", ("endpoint",)
        )
        counter.inc(endpoint="/v1/analyze")
        text = "\n".join(counter.render())
        assert "# HELP requests_total Requests served." in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{endpoint="/v1/analyze"} 1' in text

    def test_label_values_escaped(self, registry):
        counter = registry.counter("odd_total", "Odd.", ("tag",))
        counter.inc(tag='a"b\\c')
        text = "\n".join(counter.render())
        assert 'odd_total{tag="a\\"b\\\\c"} 1' in text

    def test_thread_safety_no_lost_updates(self, registry):
        counter = registry.counter("ticks_total", "Ticks.")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 8000.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("in_flight", "In flight.")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4.0
        assert "# TYPE in_flight gauge" in "\n".join(gauge.render())


class TestStreamingHistogram:
    def test_quantiles_clamped_to_observed_range(self):
        histogram = StreamingHistogram()
        for value in [0.001, 0.002, 0.003, 0.004, 0.005]:
            histogram.observe(value)
        assert histogram.count == 5
        assert 0.001 <= histogram.quantile(0.5) <= 0.005
        assert histogram.quantile(0.5) <= histogram.quantile(0.99)
        assert histogram.quantile(1.0) == 0.005

    def test_relative_error_bounded_by_growth(self):
        histogram = StreamingHistogram(growth=1.25)
        for _ in range(100):
            histogram.observe(0.0123)
        estimate = histogram.quantile(0.5)
        assert estimate == pytest.approx(0.0123, rel=0.25)

    def test_bounded_memory(self):
        histogram = StreamingHistogram()
        for k in range(10000):
            histogram.observe(1e-6 + (k % 997) * 1e-5)
        assert histogram.count == 10000
        assert len(histogram._counts) == len(histogram._bounds) + 1

    def test_percentile_keys(self):
        histogram = StreamingHistogram()
        histogram.observe(0.5)
        assert set(histogram.percentiles()) == {"p50", "p90", "p99", "p999"}

    def test_nan_ignored_and_empty_is_nan(self):
        histogram = StreamingHistogram()
        histogram.observe(float("nan"))
        assert histogram.count == 0
        assert math.isnan(histogram.quantile(0.5))
        assert math.isnan(histogram.mean)

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram().quantile(0.0)

    def test_deterministic_in_any_arrival_order(self):
        values = [0.001 * (1 + (k * 7) % 23) for k in range(200)]
        a, b = StreamingHistogram(), StreamingHistogram()
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.percentiles() == b.percentiles()
        assert a.total == pytest.approx(b.total)


class TestHistogramFamily:
    def test_labelled_series_summary_form(self, registry):
        histogram = registry.histogram(
            "request_seconds", "Latency.", ("endpoint",)
        )
        histogram.observe(0.01, endpoint="/v1/analyze")
        histogram.observe(0.02, endpoint="/v1/analyze")
        histogram.observe(0.5, endpoint="/v1/assign")
        text = "\n".join(histogram.render())
        assert "# TYPE request_seconds summary" in text
        assert 'endpoint="/v1/analyze",quantile="0.5"' in text
        assert 'request_seconds_count{endpoint="/v1/analyze"} 2' in text
        assert 'request_seconds_sum{endpoint="/v1/assign"} 0.5' in text

    def test_series_accessor(self, registry):
        histogram = registry.histogram("h_seconds", "H.", ("k",))
        histogram.observe(1.0, k="a")
        assert histogram.series(k="a").count == 1
        assert histogram.series(k="missing") is None


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("a_total", "A.", ("k",))
        second = registry.counter("a_total", "A.", ("k",))
        assert first is second

    def test_conflicting_reregistration_rejected(self, registry):
        registry.counter("a_total", "A.")
        with pytest.raises(ValueError):
            registry.gauge("a_total", "A.")
        with pytest.raises(ValueError):
            registry.counter("a_total", "A.", ("k",))

    def test_invalid_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad name!", "Nope.")

    def test_render_is_sorted_and_newline_terminated(self, registry):
        registry.counter("b_total", "B.").inc()
        registry.gauge("a_value", "A.").set(1)
        text = registry.render()
        assert text.index("a_value") < text.index("b_total")
        assert text.endswith("\n")

    def test_names_and_get(self, registry):
        registry.counter("a_total", "A.")
        assert registry.names() == ["a_total"]
        assert registry.get("a_total") is not None
        assert registry.get("missing") is None

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()


class TestHelpers:
    def test_percentile_nearest_rank(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 1.0) == 4.0

    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_percentile_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)

    def test_sanitise_metric_name(self):
        assert sanitise_metric_name("/v1/analyze") == "_v1_analyze"
        assert sanitise_metric_name("9lives") == "_9lives"
        assert sanitise_metric_name("already_fine") == "already_fine"

    def test_render_stats_gauges_flattens_nested_numbers(self):
        text = render_stats_gauges(
            {"store": {"hits": 3, "entries": 10}, "uptime_seconds": 1.5,
             "ok": True, "name": "ignored-strings"},
            prefix="repro_stats",
        )
        assert "repro_stats_store_hits 3" in text
        assert "repro_stats_uptime_seconds 1.5" in text
        assert "repro_stats_ok 1" in text
        assert "ignored" not in text
