"""Revalidation of detector-flagged models through the MC harness."""

from __future__ import annotations

import pytest

from repro.obs import revalidate_flagged, revalidate_model
from repro.scenarios import drifting_request_stream

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def drift_models():
    """The last (thinnest-margin) models of a seeded drift stream."""
    stream = drifting_request_stream(8, n_tasks=4, seed=23)
    return {s.canonical_sha256(): s.to_dict() for s in stream}


class TestRevalidateModel:
    def test_drift_model_lands_in_a_confusion_cell(self, drift_models):
        sha, model = next(iter(drift_models.items()))
        record = revalidate_model(model, sha=sha, horizon_periods=20)
        assert record["sha"] == sha
        assert record["assigned"]
        assert record["cell"] in (
            "stable_confirmed",
            "unstable_confirmed",
            "optimistic",
            "conservative",
            "near_boundary",
        )
        # The drift stream is stable throughout by construction.
        assert record["analytic_stable"] is True

    def test_deterministic_for_fixed_seed(self, drift_models):
        sha, model = next(iter(drift_models.items()))
        a = revalidate_model(model, sha=sha, horizon_periods=20, seed=7)
        b = revalidate_model(model, sha=sha, horizon_periods=20, seed=7)
        assert a == b


class TestRevalidateFlagged:
    def test_dedup_limit_and_unknown_models(self, drift_models):
        shas = list(drift_models)
        findings = [
            {"flagged_shas": [shas[0], shas[1], shas[0], "unknown-sha"]},
            {"flagged_shas": [shas[1], shas[2]]},
        ]
        report = revalidate_flagged(
            findings,
            drift_models.get,
            limit=3,
            horizon_periods=20,
        )
        # 4 distinct shas seen, truncated to 3, one of which is unknown.
        assert report["flagged"] == 4
        assert report["truncated_to_limit"] is True
        assert report["skipped_unknown_models"] == ["unknown-sha"]
        assert report["revalidated"] == 2
        assert sum(report["cells"].values()) == 2
        assert {r["sha"] for r in report["records"]} == {shas[0], shas[1]}

    def test_empty_findings(self):
        report = revalidate_flagged([], lambda sha: None)
        assert report["flagged"] == 0
        assert report["revalidated"] == 0
        assert report["cells"] == {}

    def test_broken_model_reported_not_raised(self):
        findings = [{"flagged_shas": ["bad"]}]
        report = revalidate_flagged(
            findings, lambda sha: {"tasks": "not-a-list"}
        )
        (record,) = report["records"]
        assert record["sha"] == "bad"
        assert "error" in record
