"""The :class:`Observability` facade: lifecycle hooks and zero-cost off."""

from __future__ import annotations

import pytest

from repro.obs import Observability, read_events

pytestmark = pytest.mark.obs


def serve_one(obs, endpoint="/v1/analyze", status=200):
    trace = obs.request_started(endpoint)
    if trace is not None:
        with trace.span("store_lookup", outcome="miss"):
            pass
    obs.request_finished(endpoint, status, trace, seconds=0.001)
    return trace


class TestEnabled:
    def test_request_lifecycle_feeds_instruments(self):
        obs = Observability()
        trace = serve_one(obs)
        assert trace is not None
        stats = obs.stats()
        assert stats["requests_by_endpoint"] == {"/v1/analyze": 1}
        assert stats["errors_by_endpoint"] == {}
        assert stats["in_flight"] == 0
        assert stats["latency_seconds"]["/v1/analyze"]["count"] == 1

    def test_errors_counted_separately(self):
        obs = Observability()
        serve_one(obs, status=400)
        stats = obs.stats()
        assert stats["errors_by_endpoint"] == {"/v1/analyze": 1}

    def test_trace_id_always_available(self):
        obs = Observability(enabled=False)
        assert obs.request_started("/v1/analyze") is None
        assert obs.trace_id_for(None)

    def test_record_analysis_feeds_window(self):
        obs = Observability()
        obs.record_analysis(
            "sha1", {"stable": True, "min_rel_slack": 0.2},
            source="computed", latency_seconds=0.001,
        )
        (record,) = obs.window.snapshot()
        assert record["sha"] == "sha1"
        assert record["min_rel_slack"] == 0.2

    def test_run_detectors_ticks_counters(self):
        obs = Observability()
        report = obs.run_detectors()
        assert report["n_records"] == 0
        assert report["n_findings"] == 0
        assert obs.registry.get("repro_detector_runs_total").value() == 1

    def test_run_detectors_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            Observability().run_detectors(detectors=["nope"])

    def test_metrics_text_well_formed(self):
        obs = Observability()
        serve_one(obs)
        text = obs.metrics_text({"store": {"hits": 1}})
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_daemon_uptime_seconds" in text
        assert "repro_stats_store_hits 1" in text
        for line in text.splitlines():
            assert line.startswith("#") or " " in line

    def test_event_log_receives_traces(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        obs = Observability(event_log_path=path)
        serve_one(obs)
        obs.close()
        events = read_events(path)
        assert [e["kind"] for e in events] == ["trace"]
        assert obs.stats()["event_log"]["events_written"] == 1


class TestDisabled:
    def test_hooks_are_noops_but_request_counters_tick(self):
        obs = Observability(enabled=False)
        serve_one(obs)
        obs.record_analysis("sha1", {"stable": True}, source="computed")
        stats = obs.stats()
        # The per-endpoint request/error counters stay on (they back the
        # /v1/stats satellite and cost one dict update)...
        assert stats["requests_by_endpoint"] == {"/v1/analyze": 1}
        # ...but traces, latency series, and the window do not exist.
        assert stats["latency_seconds"] == {}
        assert stats["window"]["entries"] == 0
        assert len(obs.window) == 0

    def test_detectors_still_runnable_on_empty_window(self):
        obs = Observability(enabled=False)
        assert obs.run_detectors()["n_records"] == 0
