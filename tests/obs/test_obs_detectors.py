"""Detector purity, determinism, and the hash-pinned canonical envelope.

The detectors' contract is the strongest in the layer: pure functions of
the window snapshot, versioned, advisory-only, with byte-identical
canonical-JSON findings.  The golden-hash test at the bottom pins the
full envelope bytes for a fixed synthetic window -- any change to
detector maths, rounding, or the envelope shape must bump
``algorithm_version`` / ``OBS_SCHEMA_VERSION`` and regenerate the pin
deliberately.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    OBS_SCHEMA_VERSION,
    CacheEfficiencyDetector,
    Finding,
    LatencyRegressionDetector,
    NearBoundaryPileupDetector,
    VerdictDriftDetector,
    all_detectors,
    detect_report,
    detect_report_json,
    detector_catalogue,
    detector_names,
    get_detector,
)
from repro.obs.detectors import split_baseline_recent
from repro.sweep.result import canonical_sha256_of

pytestmark = pytest.mark.obs


def make_record(seq, **overrides):
    """One synthetic window record; overrides patch individual fields."""
    record = {
        "seq": seq,
        "sha": f"sha-{seq:04d}",
        "name": f"model-{seq}",
        "n_tasks": 4,
        "utilization": 0.5,
        "schedulable": True,
        "stable": True,
        "min_rel_slack": 0.3,
        "source": "computed",
        "memo_hits": None,
        "memo_recomputations": None,
        "latency_seconds": 0.001,
        "trace_id": f"t-{seq}",
    }
    record.update(overrides)
    return record


def drift_window(n=24, base_slack=0.3, final_slack=0.02):
    """A window whose min_rel_slack decays while verdicts stay stable."""
    return [
        make_record(
            k + 1,
            min_rel_slack=base_slack
            + (final_slack - base_slack) * k / (n - 1),
        )
        for k in range(n)
    ]


class TestRegistry:
    def test_catalogue_names_sorted_and_versioned(self):
        names = detector_names()
        assert names == tuple(sorted(names))
        assert set(names) == {
            "cache_efficiency",
            "latency_regression",
            "near_boundary_pileup",
            "verdict_drift",
        }
        for entry in detector_catalogue():
            assert entry["algorithm_version"] >= 1
            assert entry["description"]

    def test_get_detector_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown detector"):
            get_detector("no_such_detector")

    def test_all_detectors_match_names(self):
        assert tuple(d.name for d in all_detectors()) == detector_names()


class TestFinding:
    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(
                detector="x", algorithm_version=1,
                severity="catastrophic", summary="nope",
            )

    def test_to_dict_roundtrips_json(self):
        finding = Finding(
            detector="x", algorithm_version=2, severity="warning",
            summary="s", flagged_shas=("a", "b"), metrics={"k": 1.5},
        )
        assert json.loads(json.dumps(finding.to_dict())) == finding.to_dict()


class TestSplit:
    def test_positional_half_split(self):
        records = [make_record(k) for k in range(1, 11)]
        baseline, recent = split_baseline_recent(records)
        assert len(baseline) == 5 and len(recent) == 5
        assert baseline[-1]["seq"] < recent[0]["seq"]


class TestVerdictDrift:
    def test_fires_on_margin_collapse_with_stable_verdicts(self):
        findings = VerdictDriftDetector().detect(drift_window())
        assert len(findings) == 1
        finding = findings[0]
        assert finding.detector == "verdict_drift"
        assert finding.severity in ("warning", "critical")
        # Flagged models are the recent ones inside the flag band.
        assert finding.flagged_shas
        assert all(sha.startswith("sha-") for sha in finding.flagged_shas)
        assert finding.metrics["recent_mean_rel_slack"] < (
            finding.metrics["baseline_mean_rel_slack"]
        )

    def test_silent_on_healthy_margins(self):
        healthy = [make_record(k + 1) for k in range(24)]
        assert VerdictDriftDetector().detect(healthy) == []

    def test_silent_below_min_records(self):
        assert VerdictDriftDetector().detect(drift_window(n=8)) == []

    def test_silent_when_verdicts_already_flip(self):
        # Margin collapse *with* verdict flips is not drift -- the
        # analysis is answering honestly.
        flipping = [
            make_record(k + 1, stable=k < 4, min_rel_slack=0.3 if k < 4 else None)
            for k in range(24)
        ]
        assert VerdictDriftDetector().detect(flipping) == []

    def test_critical_on_deep_collapse(self):
        # A step collapse (healthy baseline, near-zero recent margins)
        # pushes recent/baseline below the 0.25 critical ratio.
        window = [
            make_record(k + 1, min_rel_slack=0.4 if k < 12 else 0.01)
            for k in range(24)
        ]
        findings = VerdictDriftDetector().detect(window)
        assert findings and findings[0].severity == "critical"


class TestNearBoundaryPileup:
    def test_fires_on_recent_pileup(self):
        window = [
            make_record(
                k + 1, min_rel_slack=0.4 if k < 12 else 0.01
            )
            for k in range(24)
        ]
        findings = NearBoundaryPileupDetector().detect(window)
        assert len(findings) == 1
        assert findings[0].severity == "critical"  # 100% in band
        assert len(findings[0].flagged_shas) == 12

    def test_silent_when_always_near_boundary(self):
        # High in-band fraction with no *rise* over baseline: not a
        # regression, just a tight workload.
        window = [make_record(k + 1, min_rel_slack=0.01) for k in range(24)]
        assert NearBoundaryPileupDetector().detect(window) == []


class TestLatencyRegression:
    def test_fires_on_latency_jump(self):
        window = [
            make_record(k + 1, latency_seconds=0.001 if k < 12 else 0.01)
            for k in range(24)
        ]
        findings = LatencyRegressionDetector().detect(window)
        assert len(findings) == 1
        assert findings[0].metrics["p50_ratio"] >= 2.0

    def test_silent_on_flat_latency(self):
        window = [make_record(k + 1) for k in range(24)]
        assert LatencyRegressionDetector().detect(window) == []


class TestCacheEfficiency:
    def test_fires_on_store_rate_collapse(self):
        window = [
            make_record(k + 1, source="store" if k < 12 else "computed")
            for k in range(24)
        ]
        findings = CacheEfficiencyDetector().detect(window)
        assert len(findings) == 1
        assert findings[0].metrics["cache"] == "store"

    def test_fires_on_memo_rate_collapse(self):
        window = [
            make_record(
                k + 1,
                memo_hits=9 if k < 12 else 0,
                memo_recomputations=1 if k < 12 else 10,
            )
            for k in range(24)
        ]
        findings = CacheEfficiencyDetector().detect(window)
        assert [f.metrics["cache"] for f in findings] == ["memo"]

    def test_silent_on_cold_baseline(self):
        window = [make_record(k + 1) for k in range(24)]
        assert CacheEfficiencyDetector().detect(window) == []


class TestPurityAndBatch:
    def test_detect_is_pure(self):
        window = drift_window()
        detector = VerdictDriftDetector()
        first = [f.to_dict() for f in detector.detect(window)]
        second = [f.to_dict() for f in detector.detect(window)]
        assert first == second

    def test_detect_does_not_mutate_records(self):
        window = drift_window()
        frozen = json.dumps(window, sort_keys=True)
        for detector in all_detectors():
            detector.detect(window)
        assert json.dumps(window, sort_keys=True) == frozen

    def test_detect_batch_preserves_order(self):
        healthy = [make_record(k + 1) for k in range(24)]
        batches = VerdictDriftDetector().detect_batch(
            [healthy, drift_window(), healthy]
        )
        assert [len(b) for b in batches] == [0, 1, 0]


class TestEnvelope:
    def test_envelope_shape(self):
        report = detect_report(drift_window())
        assert report["obs_schema_version"] == OBS_SCHEMA_VERSION
        assert report["advisory_only"] is True
        assert report["n_records"] == 24
        assert report["first_seq"] == 1 and report["last_seq"] == 24
        assert report["n_findings"] == len(report["findings"]) == 1
        ran = {d["name"]: d["findings"] for d in report["detectors"]}
        assert set(ran) == set(detector_names())
        assert ran["verdict_drift"] == 1

    def test_canonical_json_embeds_consistent_hash(self):
        text = detect_report_json(drift_window())
        data = json.loads(text)
        embedded = data.pop("canonical_sha256")
        assert embedded == canonical_sha256_of(data)

    def test_golden_hash_pinned(self):
        """Byte-identical findings for a fixed window, forever.

        Regenerate deliberately (alongside an ``algorithm_version`` or
        ``OBS_SCHEMA_VERSION`` bump) with::

            PYTHONPATH=src python -c "
            import json
            from tests.obs.test_obs_detectors import drift_window  # noqa
            from repro.obs import detect_report_json
            print(json.loads(detect_report_json(drift_window()))
                  ['canonical_sha256'])"
        """
        text = detect_report_json(drift_window())
        assert json.loads(text)["canonical_sha256"] == GOLDEN_SHA256
        # Stability across repeated serialisation (byte identity).
        assert detect_report_json(drift_window()) == text


#: Pinned canonical hash of ``detect_report(drift_window())``.
GOLDEN_SHA256 = (
    "b887480883911ad6158d235c2cac5871f0ab949467adf4dbf4bd6c238885ba04"
)
