"""Tracing spans, the JSON-lines event log, and the report window."""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.obs import (
    EventLog,
    ReportWindow,
    RequestTrace,
    next_trace_id,
    read_events,
    summary_from_report_body,
    summary_from_report_dict,
)
from repro.obs.logs import (
    SERVE_LOGGER_NAME,
    configure_serve_logging,
    disable_serve_logging,
    serve_logger,
)

pytestmark = pytest.mark.obs


class TestTraceIds:
    def test_unique_and_orderable_within_run(self):
        first, second = next_trace_id(), next_trace_id()
        assert first != second
        prefix_a, seq_a = first.rsplit("-", 1)
        prefix_b, seq_b = second.rsplit("-", 1)
        assert prefix_a == prefix_b
        assert int(seq_b) == int(seq_a) + 1


class TestRequestTrace:
    def test_spans_and_annotations(self):
        trace = RequestTrace("/v1/analyze")
        with trace.span("store_lookup", outcome="miss"):
            pass
        trace.add_span("batch_compute", 0.25, batch_size=3)
        trace.annotate(source="computed")
        trace.finish(200)
        data = trace.to_dict()
        assert data["endpoint"] == "/v1/analyze"
        assert data["status"] == 200
        assert data["duration_seconds"] >= 0
        stages = [span["stage"] for span in data["spans"]]
        assert stages == ["store_lookup", "batch_compute"]
        assert data["spans"][0]["outcome"] == "miss"
        assert data["spans"][1]["seconds"] == 0.25
        assert data["annotations"] == {"source": "computed"}

    def test_spans_from_multiple_threads(self):
        trace = RequestTrace("/v1/analyze")

        def work(k):
            with trace.span(f"stage{k}"):
                pass

        threads = [threading.Thread(target=work, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace.to_dict()["spans"]) == 8

    def test_explicit_trace_id_respected(self):
        trace = RequestTrace("/v1/analyze", trace_id="fixed-1")
        assert trace.trace_id == "fixed-1"


class TestEventLog:
    def test_write_and_read_back(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        trace = RequestTrace("/v1/analyze")
        trace.finish(200)
        log.emit_trace(trace)
        log.emit("findings", {"report": {"n_findings": 0}})
        log.close()
        events = read_events(path)
        assert [e["kind"] for e in events] == ["trace", "findings"]
        assert events[0]["trace_id"] == trace.trace_id
        assert log.events_written == 2

    def test_torn_last_line_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps({"kind": "trace", "trace_id": "a-1"})
            + "\n"
            + '{"kind": "trace", "trunc'
        )
        events = read_events(str(path))
        assert len(events) == 1

    def test_emit_after_close_is_noop(self, tmp_path):
        log = EventLog(str(tmp_path / "events.jsonl"))
        log.close()
        log.emit("trace", {"trace_id": "x"})
        assert read_events(log.path) == []

    def test_creates_parent_directory(self, tmp_path):
        log = EventLog(str(tmp_path / "deep" / "dir" / "events.jsonl"))
        log.emit("trace", {"trace_id": "x"})
        log.close()
        assert len(read_events(log.path)) == 1


class TestReportWindow:
    def test_monotone_seq_and_bounded(self):
        window = ReportWindow(max_entries=4)
        for k in range(10):
            window.record(f"sha{k}", {"name": f"m{k}"}, source="computed")
        snapshot = window.snapshot()
        assert len(window) == 4
        assert [r["seq"] for r in snapshot] == [7, 8, 9, 10]
        assert window.stats()["total_recorded"] == 10

    def test_snapshot_last_n(self):
        window = ReportWindow(max_entries=16)
        for k in range(8):
            window.record(f"sha{k}", None, source="computed")
        assert [r["seq"] for r in window.snapshot(last=3)] == [6, 7, 8]
        assert window.snapshot(last=0) == []

    def test_model_and_summary_maps_lru_bounded(self):
        window = ReportWindow(max_entries=16, model_entries=2)
        for k in range(4):
            window.remember_model(f"sha{k}", {"name": f"m{k}"})
            window.remember_summary(f"sha{k}", {"stable": True})
        assert window.model_for("sha0") is None
        assert window.model_for("sha3") == {"name": "m3"}
        assert window.summary_for("sha3") == {"stable": True}

    def test_snapshot_copies_are_independent(self):
        window = ReportWindow(max_entries=4)
        window.record("sha", {"stable": True}, source="computed")
        snapshot = window.snapshot()
        snapshot[0]["stable"] = False
        assert window.snapshot()[0]["stable"] is True


class TestReportSummaries:
    def test_summary_from_report_dict(self):
        report = {
            "name": "sys", "n_tasks": 2, "utilization": 0.4,
            "schedulable": True, "stable": True,
            "tasks": [{"rel_slack": 0.2}, {"rel_slack": 0.05}],
        }
        summary = summary_from_report_dict(report)
        assert summary["min_rel_slack"] == 0.05
        assert summary["stable"] is True

    def test_summary_handles_nonfinite_sentinels(self):
        report = {
            "tasks": [{"rel_slack": "-Infinity"}, {"rel_slack": 0.3}]
        }
        assert summary_from_report_dict(report)["min_rel_slack"] == float(
            "-inf"
        )

    def test_summary_from_report_body_rejects_non_reports(self):
        assert summary_from_report_body("not json") is None
        assert summary_from_report_body('{"no_tasks": 1}') is None


class TestServeLogging:
    def teardown_method(self):
        disable_serve_logging()

    def test_json_mode_emits_parseable_lines(self, capsys):
        import io

        stream = io.StringIO()
        logger = configure_serve_logging("info", json_mode=True, stream=stream)
        logger.info("request", extra={"trace_id": "a-1", "status": 200})
        line = stream.getvalue().strip()
        record = json.loads(line)
        assert record["message"] == "request"
        assert record["trace_id"] == "a-1"
        assert record["status"] == 200
        assert record["logger"] == SERVE_LOGGER_NAME

    def test_text_mode_includes_extras(self):
        import io

        stream = io.StringIO()
        logger = configure_serve_logging("info", stream=stream)
        logger.info("request", extra={"trace_id": "a-1"})
        assert "request" in stream.getvalue()
        assert "trace_id=a-1" in stream.getvalue()

    def test_reconfigure_replaces_handler(self):
        import io

        first, second = io.StringIO(), io.StringIO()
        configure_serve_logging("info", stream=first)
        logger = configure_serve_logging("info", stream=second)
        logger.info("hello")
        assert first.getvalue() == ""
        assert "hello" in second.getvalue()
        assert len(logger.handlers) == 1

    def test_level_filtering(self):
        import io

        stream = io.StringIO()
        logger = configure_serve_logging("warning", stream=stream)
        logger.info("quiet")
        logger.warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_unconfigured_logger_is_quiet_at_info(self):
        disable_serve_logging()
        logger = serve_logger()
        assert not logger.isEnabledFor(logging.INFO) or not logger.handlers
