"""Tests of the benchmark plant database."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.plants import (
    BENCHMARK_PLANT_NAMES,
    PLANT_LIBRARY,
    Plant,
    get_plant,
)
from repro.errors import ModelError
from repro.lti.transferfunction import TransferFunction


class TestLibrary:
    def test_contains_the_papers_dc_servo(self):
        servo = get_plant("dc_servo")
        # Fig. 4's transfer function 1000/(s^2 + s).
        assert np.allclose(servo.tf.num, [1000.0])
        assert np.allclose(servo.tf.den, [1.0, 1.0, 0.0])

    def test_all_benchmark_plants_exist(self):
        for name in BENCHMARK_PLANT_NAMES:
            assert name in PLANT_LIBRARY

    def test_benchmark_plants_exclude_pathological_ones(self):
        assert "harmonic_oscillator" not in BENCHMARK_PLANT_NAMES
        assert "resonant_servo" not in BENCHMARK_PLANT_NAMES

    def test_unknown_plant_raises_with_suggestions(self):
        with pytest.raises(ModelError, match="known plants"):
            get_plant("warp_drive")

    def test_period_ranges_are_sane(self):
        for plant in PLANT_LIBRARY.values():
            lo, hi = plant.period_range
            assert 0 < lo <= hi < 1.0


class TestPlantObject:
    def test_state_space_matches_tf(self):
        plant = get_plant("inverted_pendulum")
        ss = plant.state_space()
        w = np.logspace(-1, 2, 20)
        assert np.allclose(
            ss.frequency_response(w)[:, 0, 0], plant.tf.frequency_response(w)
        )

    def test_cost_weights_shapes(self):
        plant = get_plant("dc_servo")
        q1, q12, q2 = plant.cost_weights()
        n = plant.order
        assert q1.shape == (n, n)
        assert q12.shape == (n, 1)
        assert q2.shape == (1, 1)
        assert np.all(np.linalg.eigvalsh(q1) >= 0)
        assert q2[0, 0] > 0

    def test_noise_model_shapes(self):
        plant = get_plant("integrator")
        r1, r2 = plant.noise_model()
        assert r1.shape == (1, 1)
        assert r2.shape == (1, 1)
        assert r2[0, 0] > 0

    def test_invalid_period_range_rejected(self):
        with pytest.raises(ModelError):
            Plant(
                name="bad",
                tf=TransferFunction([1.0], [1.0, 1.0]),
                period_range=(0.1, 0.05),
            )

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ModelError):
            Plant(
                name="bad",
                tf=TransferFunction([1.0], [1.0, 1.0]),
                period_range=(0.01, 0.1),
                input_weight=0.0,
            )

    def test_unstable_plant_flagged_by_poles(self):
        pendulum = get_plant("inverted_pendulum")
        assert np.max(pendulum.tf.poles().real) > 0
