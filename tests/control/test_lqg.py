"""Tests of the sampled-data LQG pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.lqg import design_lqg, sample_lq_problem
from repro.control.plants import get_plant
from repro.errors import ModelError, RiccatiError
from repro.lti.analysis import spectral_radius


@pytest.fixture
def servo_data():
    plant = get_plant("dc_servo")
    q1, q12, q2 = plant.cost_weights()
    r1, r2 = plant.noise_model()
    return plant.state_space(), q1, q12, q2, r1, r2


class TestSampleLqProblem:
    def test_no_delay_keeps_plant_dimension(self, servo_data):
        ss, q1, q12, q2, r1, _ = servo_data
        problem = sample_lq_problem(ss, 0.006, 0.0, q1, q12, q2, r1)
        assert not problem.augmented
        assert problem.a_z.shape == (2, 2)
        assert np.allclose(problem.gamma1, 0.0)

    def test_delay_augments_with_previous_input(self, servo_data):
        ss, q1, q12, q2, r1, _ = servo_data
        problem = sample_lq_problem(ss, 0.006, 0.003, q1, q12, q2, r1)
        assert problem.augmented
        assert problem.a_z.shape == (3, 3)
        # Bottom row of A_z clears u_prev; B_z routes the new input there.
        assert np.allclose(problem.a_z[2, :], 0.0)
        assert problem.b_z[2, 0] == pytest.approx(1.0)

    def test_cost_matrices_integrate_continuous_cost(self, servo_data):
        # For a constant state/input over one period (A = 0 plants), the
        # sampled cost must equal h * continuous cost.  Use a synthetic
        # integrator with zero dynamics to check the normalisation.
        from repro.lti.statespace import StateSpace

        plant = StateSpace(np.zeros((1, 1)), np.zeros((1, 1)), [[1.0]])
        q1 = np.array([[2.0]])
        q12 = np.zeros((1, 1))
        q2 = np.array([[3.0]])
        problem = sample_lq_problem(plant, 0.5, 0.0, q1, q12, q2, np.zeros((1, 1)))
        # x and u constant: cost over one period = 0.5 * (2 x^2 + 3 u^2).
        assert problem.q1_z[0, 0] == pytest.approx(1.0)
        assert problem.q2_z[0, 0] == pytest.approx(1.5)

    def test_delay_cost_split_is_consistent(self, servo_data):
        # Cost of (x0, u, u) with delay tau must equal cost of (x0, u)
        # without delay: if old and new inputs coincide, the split is moot.
        ss, q1, q12, q2, r1, _ = servo_data
        h, tau = 0.006, 0.0025
        plain = sample_lq_problem(ss, h, 0.0, q1, q12, q2, r1)
        delayed = sample_lq_problem(ss, h, tau, q1, q12, q2, r1)
        rng = np.random.default_rng(3)
        for _ in range(10):
            x0 = rng.standard_normal(2)
            u = rng.standard_normal(1)
            z_plain = np.concatenate([x0, u])
            q_plain = np.block(
                [[plain.q1_z, plain.q12_z], [plain.q12_z.T, plain.q2_z]]
            )
            cost_plain = z_plain @ q_plain @ z_plain
            zeta = np.concatenate([x0, u, u])
            q_delay = np.block(
                [[delayed.q1_z, delayed.q12_z], [delayed.q12_z.T, delayed.q2_z]]
            )
            cost_delay = zeta @ q_delay @ zeta
            assert np.isclose(cost_plain, cost_delay, rtol=1e-9)

    def test_rejects_delay_beyond_period(self, servo_data):
        ss, q1, q12, q2, r1, _ = servo_data
        with pytest.raises(ModelError):
            sample_lq_problem(ss, 0.006, 0.012, q1, q12, q2, r1)

    def test_noise_floor_positive_with_noise(self, servo_data):
        ss, q1, q12, q2, r1, _ = servo_data
        problem = sample_lq_problem(ss, 0.006, 0.0, q1, q12, q2, r1)
        assert problem.noise_floor > 0.0


class TestDesignLqg:
    @pytest.mark.parametrize("delay_frac", [0.0, 0.3, 0.7, 1.0])
    def test_controller_stabilises_the_sampled_loop(self, servo_data, delay_frac):
        ss, q1, q12, q2, r1, r2 = servo_data
        h = 0.006
        design = design_lqg(ss, h, delay_frac * h, q1, q12, q2, r1, r2)
        from repro.control.cost import closed_loop_matrices

        a_cl, _, _ = closed_loop_matrices(design)
        assert spectral_radius(a_cl) < 1.0

    def test_controller_periods_match(self, servo_data):
        ss, q1, q12, q2, r1, r2 = servo_data
        design = design_lqg(ss, 0.004, 0.001, q1, q12, q2, r1, r2)
        assert design.controller.dt == pytest.approx(0.004)

    def test_controller_dimensions(self, servo_data):
        ss, q1, q12, q2, r1, r2 = servo_data
        no_delay = design_lqg(ss, 0.006, 0.0, q1, q12, q2, r1, r2)
        assert no_delay.controller.n_states == 2
        with_delay = design_lqg(ss, 0.006, 0.002, q1, q12, q2, r1, r2)
        assert with_delay.controller.n_states == 3

    def test_kalman_covariance_is_psd(self, servo_data):
        ss, q1, q12, q2, r1, r2 = servo_data
        design = design_lqg(ss, 0.006, 0.0, q1, q12, q2, r1, r2)
        assert np.all(np.linalg.eigvalsh(design.error_covariance) >= -1e-12)

    def test_pathological_period_raises(self):
        # Undamped oscillator sampled at half its period: unreachable.
        plant = get_plant("harmonic_oscillator")
        q1, q12, q2 = plant.cost_weights()
        r1, r2 = plant.noise_model()
        omega = 4.0 * np.pi
        pathological_h = np.pi / omega
        with pytest.raises(RiccatiError):
            design_lqg(
                plant.state_space(), pathological_h, 0.0, q1, q12, q2, r1, r2
            )

    def test_unstable_plant_is_stabilised(self):
        plant = get_plant("inverted_pendulum")
        q1, q12, q2 = plant.cost_weights()
        r1, r2 = plant.noise_model()
        design = design_lqg(plant.state_space(), 0.02, 0.005, q1, q12, q2, r1, r2)
        from repro.control.cost import closed_loop_matrices

        a_cl, _, _ = closed_loop_matrices(design)
        assert spectral_radius(a_cl) < 1.0
