"""Tests of the stationary closed-loop cost (the Fig. 2 engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.cost import (
    closed_loop_cost,
    closed_loop_matrices,
    control_input_maps,
    cost_vs_period,
    plant_lqg_cost,
)
from repro.control.lqg import design_lqg
from repro.control.plants import get_plant


@pytest.fixture
def servo_design():
    plant = get_plant("dc_servo")
    q1, q12, q2 = plant.cost_weights()
    r1, r2 = plant.noise_model()
    return design_lqg(plant.state_space(), 0.006, 0.002, q1, q12, q2, r1, r2)


def _monte_carlo_cost(design, n_steps=120_000, seed=9):
    """Empirical per-period cost of the simulated closed loop."""
    problem = design.problem
    a_cl, b_w, b_e = closed_loop_matrices(design)
    u_x, u_e = control_input_maps(design)
    n = problem.n_plant
    m = problem.gamma0.shape[1]
    nz = n + m if problem.augmented else n
    rng = np.random.default_rng(seed)
    chol_w = np.linalg.cholesky(problem.r1_d + 1e-15 * np.eye(n))
    chol_e = np.linalg.cholesky(design.r2_d)
    q_big = np.block([[problem.q1_z, problem.q12_z], [problem.q12_z.T, problem.q2_z]])
    xi = np.zeros(a_cl.shape[0])
    total = 0.0
    for _ in range(n_steps):
        e = chol_e @ rng.standard_normal(1)
        w = chol_w @ rng.standard_normal(n)
        u = u_x @ xi + u_e @ e
        v = np.concatenate([xi[:nz], u])
        total += v @ q_big @ v
        xi = a_cl @ xi + b_w @ w + b_e @ e
    return (total / n_steps + problem.noise_floor) / problem.h


class TestClosedLoopCost:
    def test_positive(self, servo_design):
        assert closed_loop_cost(servo_design) > 0.0

    @pytest.mark.slow
    def test_matches_monte_carlo(self, servo_design):
        analytic = closed_loop_cost(servo_design)
        empirical = _monte_carlo_cost(servo_design)
        assert empirical == pytest.approx(analytic, rel=0.05)

    @pytest.mark.slow
    def test_no_delay_case_matches_monte_carlo(self):
        plant = get_plant("dc_servo")
        q1, q12, q2 = plant.cost_weights()
        r1, r2 = plant.noise_model()
        design = design_lqg(plant.state_space(), 0.006, 0.0, q1, q12, q2, r1, r2)
        analytic = closed_loop_cost(design)
        empirical = _monte_carlo_cost(design)
        assert empirical == pytest.approx(analytic, rel=0.05)

    def test_delay_increases_cost(self):
        plant = get_plant("dc_servo")
        q1, q12, q2 = plant.cost_weights()
        r1, r2 = plant.noise_model()
        h = 0.006
        costs = []
        for delay in (0.0, 0.3 * h, 0.8 * h):
            design = design_lqg(plant.state_space(), h, delay, q1, q12, q2, r1, r2)
            costs.append(closed_loop_cost(design))
        assert costs[0] < costs[1] < costs[2]


class TestPlantCostSweep:
    def test_pathological_period_reports_infinity(self):
        plant = get_plant("harmonic_oscillator")
        omega = 4.0 * np.pi
        pathological_h = np.pi / omega
        assert plant_lqg_cost(plant, pathological_h) == float("inf")

    def test_regular_period_is_finite(self):
        plant = get_plant("harmonic_oscillator")
        omega = 4.0 * np.pi
        assert np.isfinite(plant_lqg_cost(plant, 0.6 * np.pi / omega))

    def test_fig2_phenomenology(self):
        """The three Fig. 2 phenomena on the resonant plant."""
        plant = get_plant("resonant_servo")
        periods = np.linspace(0.05, 0.6, 45)
        costs = cost_vs_period(plant, periods)
        finite = np.isfinite(costs)
        assert np.all(costs[finite] > 0)
        # (2) non-monotone: some shorter period has higher cost...
        diffs = np.diff(costs[finite])
        assert np.any(diffs < 0)
        # (3) ...yet the overall trend increases by a large factor.
        assert costs[finite][-1] > 10.0 * costs[finite][0]

    def test_cost_aligned_with_periods(self):
        plant = get_plant("dc_servo")
        periods = [0.002, 0.004, 0.008]
        costs = cost_vs_period(plant, periods)
        assert costs.shape == (3,)
        # For this well-behaved servo, slower sampling costs more.
        assert costs[0] < costs[1] < costs[2]
