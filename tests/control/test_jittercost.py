"""Tests of the expected-cost-under-jitter analysis (Jitterbug-style)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.cost import closed_loop_cost
from repro.control.jittercost import (
    cost_vs_jitter,
    expected_cost_under_jitter,
)
from repro.control.lqg import design_lqg
from repro.control.plants import get_plant
from repro.errors import ModelError, UnstableLoopError


@pytest.fixture(scope="module")
def servo_setup():
    plant = get_plant("dc_servo")
    q1, q12, q2 = plant.cost_weights()
    r1, r2 = plant.noise_model()
    ss = plant.state_space()
    design = design_lqg(ss, 0.006, 0.0, q1, q12, q2, r1, r2)
    return ss, design, (q1, q12, q2, r1)


class TestConsistencyWithDeterministicCost:
    @pytest.mark.parametrize("tau", [0.0, 0.002, 0.004])
    def test_zero_jitter_matches_closed_loop_cost(self, tau):
        plant = get_plant("dc_servo")
        q1, q12, q2 = plant.cost_weights()
        r1, r2 = plant.noise_model()
        ss = plant.state_space()
        design = design_lqg(ss, 0.006, tau, q1, q12, q2, r1, r2)
        reference = closed_loop_cost(design)
        result = expected_cost_under_jitter(
            design, ss, tau, 0.0, q1, q12, q2, r1
        )
        assert result.expected_cost == pytest.approx(reference, rel=1e-9)
        assert result.mean_square_stable

    def test_off_design_constant_delay_costs_more(self, servo_setup):
        # Actuating later than designed for degrades performance.
        ss, design, weights = servo_setup
        q1, q12, q2, r1 = weights
        nominal = expected_cost_under_jitter(design, ss, 0.0, 0.0, q1, q12, q2, r1)
        late = expected_cost_under_jitter(design, ss, 0.003, 0.0, q1, q12, q2, r1)
        assert late.expected_cost > nominal.expected_cost


class TestJitterSweep:
    def test_cost_increases_with_jitter(self, servo_setup):
        ss, design, weights = servo_setup
        q1, q12, q2, r1 = weights
        jitters = [0.0, 0.001, 0.002, 0.004]
        costs = cost_vs_jitter(design, ss, 0.0, jitters, q1, q12, q2, r1)
        finite = costs[np.isfinite(costs)]
        assert np.all(np.diff(finite) > 0)

    def test_sweep_reports_inf_past_ms_stability(self):
        # At h = 12 ms the servo's latency budget is ~6.6 ms (< h), so a
        # 10 ms constant actuation delay is within the period yet fatal.
        plant = get_plant("dc_servo")
        q1, q12, q2 = plant.cost_weights()
        r1, r2 = plant.noise_model()
        ss = plant.state_space()
        design = design_lqg(ss, 0.012, 0.0, q1, q12, q2, r1, r2)
        with pytest.raises(UnstableLoopError):
            expected_cost_under_jitter(design, ss, 0.010, 0.0, q1, q12, q2, r1)
        costs = cost_vs_jitter(
            design, ss, 0.005, [0.0, 0.006], q1, q12, q2, r1
        )
        assert np.isfinite(costs[0])
        assert costs[1] == float("inf")

    def test_margin_consistency(self, servo_setup):
        """Inside half the jitter margin the loop must be MS stable with
        finite cost -- the quantitative and binary analyses agree."""
        from repro.jittermargin import jitter_margin

        ss, design, weights = servo_setup
        q1, q12, q2, r1 = weights
        margin = jitter_margin(ss, design.controller, 0.006, 0.0)
        result = expected_cost_under_jitter(
            design, ss, 0.0, 0.5 * margin, q1, q12, q2, r1
        )
        assert result.mean_square_stable
        assert np.isfinite(result.expected_cost)


class TestValidation:
    def test_rejects_delays_beyond_period(self, servo_setup):
        ss, design, weights = servo_setup
        q1, q12, q2, r1 = weights
        with pytest.raises(ModelError):
            expected_cost_under_jitter(design, ss, 0.004, 0.004, q1, q12, q2, r1)

    def test_rejects_negative_jitter(self, servo_setup):
        ss, design, weights = servo_setup
        q1, q12, q2, r1 = weights
        with pytest.raises(ModelError):
            expected_cost_under_jitter(design, ss, 0.0, -0.001, q1, q12, q2, r1)

    def test_rejects_bad_weights(self, servo_setup):
        ss, design, weights = servo_setup
        q1, q12, q2, r1 = weights
        with pytest.raises(ModelError):
            expected_cost_under_jitter(
                design, ss, 0.0, 0.001, q1, q12, q2, r1,
                delay_points=3, weights=[0.5, 0.5],
            )

    def test_custom_weights_accepted(self, servo_setup):
        ss, design, weights = servo_setup
        q1, q12, q2, r1 = weights
        result = expected_cost_under_jitter(
            design, ss, 0.0, 0.002, q1, q12, q2, r1,
            delay_points=3, weights=[0.25, 0.5, 0.25],
        )
        assert np.isfinite(result.expected_cost)

    def test_monte_carlo_agreement(self, servo_setup):
        """The Kronecker-lifted covariance matches a direct jump-system
        simulation of the jittery loop."""
        ss, design, weights = servo_setup
        q1, q12, q2, r1 = weights
        latency, jitter, points = 0.001, 0.002, 3
        result = expected_cost_under_jitter(
            design, ss, latency, jitter, q1, q12, q2, r1, delay_points=points
        )
        from repro.control.jittercost import _delay_closed_loop

        delays = np.linspace(latency, latency + jitter, points)
        pieces = [
            _delay_closed_loop(design, ss, float(d), q1, q12, q2, r1)
            for d in delays
        ]
        rng = np.random.default_rng(11)
        n = design.problem.n_plant
        chol_w = np.linalg.cholesky(design.problem.r1_d + 1e-15 * np.eye(n))
        chol_e = np.linalg.cholesky(design.r2_d)
        xi = np.zeros(pieces[0][0].shape[0])
        total = 0.0
        steps = 60_000
        for _ in range(steps):
            idx = rng.integers(points)
            a_cl, b_w, b_e, m_xi, m_e, q_big, floor = pieces[idx]
            e = chol_e @ rng.standard_normal(1)
            w = chol_w @ rng.standard_normal(n)
            v = m_xi @ xi + m_e @ e
            total += v @ q_big @ v + floor
            xi = a_cl @ xi + b_w @ w + b_e @ e
        empirical = total / steps / design.problem.h
        assert empirical == pytest.approx(result.expected_cost, rel=0.08)
