"""Tests of the LQR and Kalman helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.kalman import kalman_gain
from repro.control.lqr import dlqr, sampled_lqr_gain
from repro.control.plants import get_plant
from repro.errors import RiccatiError


class TestSampledLqr:
    def test_gain_stabilises_sampled_plant(self):
        plant = get_plant("dc_servo")
        q1, q12, q2 = plant.cost_weights()
        _, gain = sampled_lqr_gain(plant.state_space(), 0.006, 0.0, q1, q12, q2)
        from repro.control.lqg import sample_lq_problem

        problem = sample_lq_problem(
            plant.state_space(), 0.006, 0.0, q1, q12, q2, np.zeros((2, 2))
        )
        closed = problem.a_z - problem.b_z @ gain
        assert np.max(np.abs(np.linalg.eigvals(closed))) < 1.0

    def test_faster_sampling_gives_lower_riccati_cost(self):
        # S (cost-to-go per unit state) decreases with finer control.
        plant = get_plant("dc_servo")
        q1, q12, q2 = plant.cost_weights()
        s_fast, _ = sampled_lqr_gain(plant.state_space(), 0.002, 0.0, q1, q12, q2)
        s_slow, _ = sampled_lqr_gain(plant.state_space(), 0.010, 0.0, q1, q12, q2)
        # Compare quadratic forms on a few directions.
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.standard_normal(2)
            assert x @ s_fast @ x <= x @ s_slow @ x * (1 + 1e-6)


class TestDlqr:
    def test_matches_scipy(self):
        import scipy.linalg as sla

        a = np.array([[1.0, 0.2], [0.0, 1.0]])
        b = np.array([[0.02], [0.2]])
        q, r = np.eye(2), np.array([[0.5]])
        s, k = dlqr(a, b, q, r)
        s_ref = sla.solve_discrete_are(a, b, q, r)
        assert np.allclose(s, s_ref, rtol=1e-8)
        k_ref = np.linalg.solve(r + b.T @ s_ref @ b, b.T @ s_ref @ a)
        assert np.allclose(k, k_ref, rtol=1e-8)


class TestKalman:
    def test_covariance_solves_filter_dare(self):
        phi = np.array([[0.9, 0.1], [0.0, 0.8]])
        c = np.array([[1.0, 0.0]])
        r1 = np.diag([0.1, 0.2])
        r2 = np.array([[0.05]])
        p, kf = kalman_gain(phi, c, r1, r2)
        innovation = c @ p @ c.T + r2
        expected = phi @ p @ phi.T + r1 - phi @ p @ c.T @ np.linalg.solve(
            innovation, c @ p @ phi.T
        )
        assert np.allclose(p, expected, atol=1e-9)

    def test_gain_formula(self):
        phi = np.array([[0.95]])
        c = np.array([[2.0]])
        r1 = np.array([[0.1]])
        r2 = np.array([[0.3]])
        p, kf = kalman_gain(phi, c, r1, r2)
        assert np.isclose(kf[0, 0], (p @ c.T / (c @ p @ c.T + r2))[0, 0])

    def test_filter_error_dynamics_stable(self):
        phi = np.array([[1.05, 0.1], [0.0, 0.9]])  # unstable plant
        c = np.array([[1.0, 0.5]])
        r1 = 0.1 * np.eye(2)
        r2 = np.array([[0.2]])
        p, kf = kalman_gain(phi, c, r1, r2)
        error_dynamics = phi @ (np.eye(2) - kf @ c)
        assert np.max(np.abs(np.linalg.eigvals(error_dynamics))) < 1.0

    def test_undetectable_pair_raises(self):
        phi = np.diag([1.2, 0.5])
        c = np.array([[0.0, 1.0]])  # unstable mode invisible
        with pytest.raises(RiccatiError):
            kalman_gain(phi, c, np.eye(2), np.array([[1.0]]))

    def test_perfect_measurements_shrink_covariance(self):
        phi = np.array([[0.9]])
        c = np.array([[1.0]])
        r1 = np.array([[1.0]])
        p_noisy, _ = kalman_gain(phi, c, r1, np.array([[10.0]]))
        p_sharp, _ = kalman_gain(phi, c, r1, np.array([[0.01]]))
        assert p_sharp[0, 0] < p_noisy[0, 0]
