"""Tests of TransferFunction arithmetic and state-space conversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.lti.transferfunction import TransferFunction


class TestConstruction:
    def test_normalises_to_monic_denominator(self):
        tf = TransferFunction([2.0], [2.0, 4.0])
        assert np.allclose(tf.den, [1.0, 2.0])
        assert np.allclose(tf.num, [1.0])

    def test_trims_leading_zeros(self):
        tf = TransferFunction([0.0, 0.0, 5.0], [0.0, 1.0, 1.0])
        assert tf.order == 1
        assert np.allclose(tf.num, [5.0])

    def test_rejects_zero_denominator(self):
        with pytest.raises(ModelError):
            TransferFunction([1.0], [0.0])

    def test_rejects_improper(self):
        with pytest.raises(ModelError):
            TransferFunction([1.0, 0.0, 0.0], [1.0, 1.0])

    def test_order(self):
        assert TransferFunction([1000.0], [1.0, 1.0, 0.0]).order == 2


class TestEvaluation:
    def test_dc_servo_at_point(self):
        tf = TransferFunction([1000.0], [1.0, 1.0, 0.0])
        s = 2.0 + 1.0j
        assert np.isclose(tf.evaluate(s), 1000.0 / (s**2 + s))

    def test_frequency_response_shape_and_values(self):
        tf = TransferFunction([1.0], [1.0, 1.0])
        omega = np.array([0.0, 1.0, 10.0])
        response = tf.frequency_response(omega)
        assert np.allclose(response, 1.0 / (1j * omega + 1.0))

    def test_poles_and_zeros(self):
        tf = TransferFunction([1.0, 3.0], [1.0, 5.0, 6.0])
        assert sorted(tf.poles().real) == pytest.approx([-3.0, -2.0])
        assert tf.zeros().real == pytest.approx([-3.0])

    def test_dcgain_finite(self):
        assert TransferFunction([4.0], [1.0, 2.0]).dcgain() == pytest.approx(2.0)

    def test_dcgain_integrating_plant_is_infinite(self):
        assert TransferFunction([1.0], [1.0, 0.0]).dcgain() == float("inf")


class TestToStateSpace:
    @pytest.mark.parametrize(
        "num, den",
        [
            ([1000.0], [1.0, 1.0, 0.0]),      # DC servo
            ([1.0], [1.0, 0.0]),              # integrator
            ([9.0], [1.0, 0.0, -9.0]),        # pendulum
            ([1.0, 2.0], [1.0, 3.0, 2.0]),    # with a zero
            ([2.0, 1.0, 0.5], [1.0, 1.0, 4.0]),  # bi-proper
        ],
    )
    def test_frequency_responses_agree(self, num, den):
        tf = TransferFunction(num, den)
        ss = tf.to_ss()
        omega = np.logspace(-2, 2, 40)
        assert np.allclose(
            ss.frequency_response(omega)[:, 0, 0],
            tf.frequency_response(omega),
            rtol=1e-8,
            atol=1e-10,
        )

    def test_poles_preserved(self):
        tf = TransferFunction([1.0], [1.0, 3.0, 2.0])
        assert sorted(tf.to_ss().poles().real) == pytest.approx([-2.0, -1.0])

    def test_biproper_feedthrough(self):
        tf = TransferFunction([2.0, 0.0], [1.0, 1.0])  # 2s/(s+1): D = 2
        ss = tf.to_ss()
        assert ss.d[0, 0] == pytest.approx(2.0)

    def test_static_gain(self):
        ss = TransferFunction([3.0], [1.0]).to_ss()
        assert ss.n_states == 0
        assert ss.d[0, 0] == pytest.approx(3.0)
