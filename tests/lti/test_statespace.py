"""Tests of StateSpace construction, interconnection, and simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionError, ModelError
from repro.lti.statespace import StateSpace


@pytest.fixture
def servo():
    # DC servo 1000/(s^2+s), companion form.
    return StateSpace([[0.0, 1.0], [0.0, -1.0]], [[0.0], [1.0]], [[1000.0, 0.0]])


@pytest.fixture
def lag():
    return StateSpace([[-2.0]], [[1.0]], [[3.0]])


class TestConstruction:
    def test_dimensions(self, servo):
        assert servo.n_states == 2
        assert servo.n_inputs == 1
        assert servo.n_outputs == 1
        assert servo.is_continuous and not servo.is_discrete

    def test_default_d_is_zero(self, servo):
        assert np.allclose(servo.d, 0.0)

    def test_rejects_non_square_a(self):
        with pytest.raises(DimensionError):
            StateSpace([[1.0, 2.0]], [[1.0]], [[1.0]])

    def test_rejects_mismatched_b(self):
        with pytest.raises(DimensionError):
            StateSpace([[1.0]], [[1.0], [2.0]], [[1.0]])

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ModelError):
            StateSpace([[0.5]], [[1.0]], [[1.0]], dt=0.0)

    def test_repr_mentions_domain(self, servo):
        assert "ct" in repr(servo)


class TestPolesStability:
    def test_continuous_poles(self, servo):
        assert sorted(servo.poles().real) == pytest.approx([-1.0, 0.0])

    def test_marginally_stable_is_not_stable(self, servo):
        assert not servo.is_stable()

    def test_stable_lag(self, lag):
        assert lag.is_stable()

    def test_discrete_stability_uses_unit_circle(self):
        stable = StateSpace([[0.9]], [[1.0]], [[1.0]], dt=0.1)
        unstable = StateSpace([[1.1]], [[1.0]], [[1.0]], dt=0.1)
        assert stable.is_stable()
        assert not unstable.is_stable()


class TestFrequencyResponse:
    def test_lag_response(self, lag):
        omega = np.array([0.0, 2.0, 20.0])
        response = lag.frequency_response(omega)[:, 0, 0]
        expected = 3.0 / (1j * omega + 2.0)
        assert np.allclose(response, expected)

    def test_discrete_response_periodicity(self):
        sys_d = StateSpace([[0.5]], [[1.0]], [[1.0]], dt=0.5)
        w = 1.3
        two_pi_over_dt = 2 * np.pi / 0.5
        r1 = sys_d.frequency_response([w])[0, 0, 0]
        r2 = sys_d.frequency_response([w + two_pi_over_dt])[0, 0, 0]
        assert np.isclose(r1, r2)

    def test_evaluate_matches_frequency_response(self, lag):
        w = 3.7
        assert np.isclose(
            lag.evaluate(1j * w)[0, 0], lag.frequency_response([w])[0, 0, 0]
        )

    def test_matches_loop_oracle(self, servo, lag):
        # One numeric code path: the production stacked solve must agree
        # with the per-point loop oracle on regular grids.
        omega = np.linspace(0.1, 30.0, 47)
        for system in (servo, lag):
            points = 1j * omega
            np.testing.assert_allclose(
                system.frequency_response(omega),
                system._frequency_response_loop(points),
                rtol=1e-12,
            )

    def test_singular_points_resolve_individually(self):
        # An integrator has a pole at s = 0: the grid containing omega=0
        # re-enters the stacked solve per point, so the regular points
        # keep their batched values and only the pole maps to inf --
        # exactly what the loop oracle produces.
        integrator = StateSpace([[0.0]], [[1.0]], [[1.0]])
        omega = np.array([0.0, 1.0, 2.0])
        got = integrator.frequency_response(omega)
        oracle = integrator._frequency_response_loop(1j * omega)
        assert np.all(np.isinf(got[0]))
        np.testing.assert_array_equal(got[1:], oracle[1:])
        np.testing.assert_array_equal(np.isinf(got), np.isinf(oracle))


class TestInterconnections:
    def test_series_transfer_function(self, lag):
        # (3/(s+2)) in series with itself = 9/(s+2)^2.
        cascade = lag.series(lag)
        w = np.array([0.5, 1.0, 4.0])
        expected = (3.0 / (1j * w + 2.0)) ** 2
        assert np.allclose(cascade.frequency_response(w)[:, 0, 0], expected)

    def test_parallel_adds_responses(self, lag):
        doubled = lag.parallel(lag)
        w = np.array([0.5, 3.0])
        expected = 2 * (3.0 / (1j * w + 2.0))
        assert np.allclose(doubled.frequency_response(w)[:, 0, 0], expected)

    def test_unity_feedback_closed_loop(self, lag):
        closed = lag.feedback()
        w = np.array([0.0, 1.0, 5.0])
        g = 3.0 / (1j * w + 2.0)
        assert np.allclose(
            closed.frequency_response(w)[:, 0, 0], g / (1 + g), atol=1e-12
        )

    def test_feedback_with_dynamic_controller(self, lag):
        controller = StateSpace([[-1.0]], [[1.0]], [[2.0]])
        closed = lag.feedback(controller)
        w = np.array([0.3, 2.0])
        g = 3.0 / (1j * w + 2.0)
        k = 2.0 / (1j * w + 1.0)
        assert np.allclose(
            closed.frequency_response(w)[:, 0, 0], g / (1 + g * k), atol=1e-12
        )

    def test_positive_feedback_sign(self, lag):
        closed = lag.feedback(sign=+1)
        w = np.array([1.0])
        g = 3.0 / (1j * w + 2.0)
        assert np.allclose(closed.frequency_response(w)[:, 0, 0], g / (1 - g))

    def test_domain_mismatch_rejected(self, lag):
        digital = StateSpace([[0.5]], [[1.0]], [[1.0]], dt=0.1)
        with pytest.raises(ModelError):
            lag.series(digital)


class TestSimulation:
    def test_continuous_simulation_rejected(self, lag):
        with pytest.raises(ModelError):
            lag.simulate(np.ones(5))

    def test_discrete_step_response_converges_to_dcgain(self):
        sys_d = StateSpace([[0.5]], [[1.0]], [[1.0]], dt=0.1)
        outputs = sys_d.step_response(60)
        assert np.isclose(outputs[-1, 0], 1.0 / (1 - 0.5), rtol=1e-6)

    def test_simulation_matches_recursion(self, rng):
        a = np.array([[0.7, 0.1], [0.0, 0.4]])
        b = np.array([[1.0], [0.5]])
        c = np.array([[1.0, -1.0]])
        sys_d = StateSpace(a, b, c, dt=1.0)
        u = rng.standard_normal(10)
        states, outputs = sys_d.simulate(u)
        x = np.zeros(2)
        for k in range(10):
            assert np.allclose(states[k], x)
            assert np.isclose(outputs[k, 0], (c @ x)[0])
            x = a @ x + b @ [u[k]]
        assert np.allclose(states[10], x)

    def test_initial_state(self):
        sys_d = StateSpace([[1.0]], [[0.0]], [[1.0]], dt=1.0)
        _, outputs = sys_d.simulate(np.zeros(3), x0=[5.0])
        assert np.allclose(outputs[:, 0], 5.0)
