"""Equivalence tests of the population-stacked frequency responses.

:func:`repro.lti.popfreq.stacked_frequency_response` promises bitwise
equality with each system's own ``frequency_response`` call, and
:func:`repro.lti.popfreq.pencil_response` promises that any *subset* of
grid points solved on its own is bitwise equal to the same points inside
the full-grid call (the property the population margin kernel builds
on).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lti.popfreq import (
    pencil_response,
    stacked_eigvals,
    stacked_frequency_response,
)
from repro.lti.statespace import StateSpace


def _mixed_population(rng):
    systems = []
    for n in (1, 2, 2, 3, 1, 2):
        a = rng.normal(size=(n, n)) - 2.0 * np.eye(n)
        b = rng.normal(size=(n, 1))
        c = rng.normal(size=(1, n))
        systems.append(StateSpace(a, b, c))
    # A discrete member: grouped apart from the continuous ones.
    systems.append(StateSpace([[0.5]], [[1.0]], [[1.0]], dt=0.01))
    return systems


class TestStackedFrequencyResponse:
    def test_matches_per_system_calls(self, rng):
        systems = _mixed_population(rng)
        omega = np.linspace(0.1, 50.0, 64)
        stacked = stacked_frequency_response(systems, omega)
        for system, got in zip(systems, stacked):
            np.testing.assert_array_equal(got, system.frequency_response(omega))

    def test_empty_grid(self, rng):
        systems = _mixed_population(rng)
        for got in stacked_frequency_response(systems, []):
            assert got.shape == (0, 1, 1)


class TestPencilResponse:
    def test_subset_points_bitwise_equal_full_grid(self, rng):
        a = rng.normal(size=(3, 3)) - 2.0 * np.eye(3)
        system = StateSpace(a, rng.normal(size=(3, 1)), rng.normal(size=(1, 3)))
        omega = np.linspace(0.1, 50.0, 64)
        full = system.frequency_response(omega)
        subset = np.array([3, 17, 41, 63])
        got = pencil_response(system, 1j * omega[subset])
        np.testing.assert_array_equal(got, full[subset])

    def test_singular_pencil_raises(self):
        integrator = StateSpace([[0.0]], [[1.0]], [[1.0]])
        with pytest.raises(np.linalg.LinAlgError):
            pencil_response(integrator, np.array([0.0 + 0.0j]))


class TestStackedEigvals:
    def test_matches_per_matrix_calls(self, rng):
        matrices = [rng.normal(size=(n, n)) for n in (1, 2, 3, 2, 2, 4)]
        for matrix, got in zip(matrices, stacked_eigvals(matrices)):
            np.testing.assert_array_equal(got, np.linalg.eigvals(matrix))
