"""Tests of ZOH discretisation with and without input delay."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla
import scipy.signal as sig

from repro.errors import ModelError
from repro.lti.discretize import c2d_zoh, c2d_zoh_delay, held_input_weights
from repro.lti.transferfunction import TransferFunction


@pytest.fixture
def servo_ss():
    return TransferFunction([1000.0], [1.0, 1.0, 0.0]).to_ss()


def _brute_force_delayed(ss, h, delay, u, n_steps):
    """Reference simulation: continuous flow with exactly delayed ZOH input."""
    d_steps = max(1, int(np.ceil(delay / h - 1e-12)))
    tau_p = delay - (d_steps - 1) * h
    if tau_p <= 0:
        tau_p = h

    def gamma(t):
        grid = np.linspace(0.0, t, 2001)
        vals = np.array([sla.expm(ss.a * s) @ ss.b for s in grid])
        return np.trapezoid(vals, grid, axis=0)

    x = np.zeros(ss.n_states)
    outputs = []
    for k in range(n_steps):
        outputs.append(float((ss.c @ x)[0]))
        u_head = u[k - d_steps] if k >= d_steps else 0.0
        u_tail = u[k - d_steps + 1] if k >= d_steps - 1 else 0.0
        x = sla.expm(ss.a * tau_p) @ x + (gamma(tau_p) @ [u_head]).ravel()
        x = sla.expm(ss.a * (h - tau_p)) @ x + (gamma(h - tau_p) @ [u_tail]).ravel()
    return np.array(outputs)


class TestC2dZoh:
    def test_matches_scipy(self, servo_ss):
        h = 0.006
        ours = c2d_zoh(servo_ss, h)
        ad, bd, cd, dd, _ = sig.cont2discrete(
            (servo_ss.a, servo_ss.b, servo_ss.c, servo_ss.d), h
        )
        assert np.allclose(ours.a, ad)
        assert np.allclose(ours.b, bd)
        assert np.allclose(ours.c, cd)

    def test_preserves_dt(self, servo_ss):
        assert c2d_zoh(servo_ss, 0.01).dt == pytest.approx(0.01)

    def test_rejects_discrete_input(self, servo_ss):
        once = c2d_zoh(servo_ss, 0.01)
        with pytest.raises(ModelError):
            c2d_zoh(once, 0.01)

    def test_rejects_nonpositive_period(self, servo_ss):
        with pytest.raises(ModelError):
            c2d_zoh(servo_ss, 0.0)


class TestC2dZohDelay:
    def test_zero_delay_reduces_to_plain_zoh(self, servo_ss):
        plain = c2d_zoh(servo_ss, 0.01)
        delayed = c2d_zoh_delay(servo_ss, 0.01, 0.0)
        assert np.allclose(plain.a, delayed.a)
        assert np.allclose(plain.b, delayed.b)

    @pytest.mark.parametrize("delay_frac", [0.25, 0.5, 0.99])
    @pytest.mark.slow
    def test_fractional_delay_matches_brute_force(self, servo_ss, rng, delay_frac):
        h = 0.006
        delay = delay_frac * h
        augmented = c2d_zoh_delay(servo_ss, h, delay)
        u = rng.standard_normal(30)
        _, ys = augmented.simulate(u)
        expected = _brute_force_delayed(servo_ss, h, delay, u, 30)
        assert np.allclose(ys[:, 0], expected, atol=1e-6)

    @pytest.mark.parametrize("delay_frac", [1.0, 1.5, 2.3])
    @pytest.mark.slow
    def test_multi_period_delay_matches_brute_force(self, servo_ss, rng, delay_frac):
        h = 0.006
        delay = delay_frac * h
        augmented = c2d_zoh_delay(servo_ss, h, delay)
        u = rng.standard_normal(30)
        _, ys = augmented.simulate(u)
        expected = _brute_force_delayed(servo_ss, h, delay, u, 30)
        assert np.allclose(ys[:, 0], expected, atol=1e-6)

    def test_state_dimension_grows_with_delay(self, servo_ss):
        h = 0.01
        assert c2d_zoh_delay(servo_ss, h, 0.5 * h).n_states == 3
        assert c2d_zoh_delay(servo_ss, h, 1.5 * h).n_states == 4
        assert c2d_zoh_delay(servo_ss, h, 2.5 * h).n_states == 5

    def test_rejects_negative_delay(self, servo_ss):
        with pytest.raises(ModelError):
            c2d_zoh_delay(servo_ss, 0.01, -0.001)

    def test_rejects_feedthrough_plant(self):
        from repro.lti.statespace import StateSpace

        direct = StateSpace([[-1.0]], [[1.0]], [[1.0]], [[1.0]])
        with pytest.raises(ModelError):
            c2d_zoh_delay(direct, 0.1, 0.05)


class TestHeldInputWeights:
    def test_head_tail_sum_is_full_gamma(self, servo_ss):
        # Gamma1 + Gamma0 must equal the plain ZOH Gamma when u_head = u_tail.
        h, delay = 0.01, 0.004
        phi, gamma1, gamma0 = held_input_weights(servo_ss.a, servo_ss.b, h, delay)
        plain = c2d_zoh(servo_ss, h)
        assert np.allclose(gamma1 + gamma0, plain.b, atol=1e-12)
        assert np.allclose(phi, plain.a)

    def test_zero_delay_puts_everything_in_tail(self, servo_ss):
        _, gamma1, gamma0 = held_input_weights(servo_ss.a, servo_ss.b, 0.01, 0.0)
        assert np.allclose(gamma1, 0.0)
        plain = c2d_zoh(servo_ss, 0.01)
        assert np.allclose(gamma0, plain.b)

    def test_full_delay_puts_everything_in_head(self, servo_ss):
        _, gamma1, gamma0 = held_input_weights(servo_ss.a, servo_ss.b, 0.01, 0.01)
        assert np.allclose(gamma0, 0.0)
        plain = c2d_zoh(servo_ss, 0.01)
        assert np.allclose(gamma1, plain.b, atol=1e-12)
