"""Tests of the pole/stability/frequency analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lti.analysis import (
    dcgain,
    frequency_response,
    is_hurwitz_stable,
    is_schur_stable,
    poles,
    spectral_radius,
)
from repro.lti.statespace import StateSpace
from repro.lti.transferfunction import TransferFunction


class TestPoles:
    def test_statespace_poles(self):
        ss = StateSpace([[-1.0, 0.0], [0.0, -2.0]], [[1.0], [1.0]], [[1.0, 0.0]])
        assert sorted(poles(ss).real) == pytest.approx([-2.0, -1.0])

    def test_transfer_function_poles(self):
        tf = TransferFunction([1.0], [1.0, 3.0, 2.0])
        assert sorted(poles(tf).real) == pytest.approx([-2.0, -1.0])

    def test_bare_matrix(self):
        assert sorted(poles(np.diag([1.0, 5.0])).real) == pytest.approx([1.0, 5.0])


class TestStabilityPredicates:
    def test_spectral_radius(self):
        assert spectral_radius(np.diag([0.5, -0.9])) == pytest.approx(0.9)

    def test_schur(self):
        assert is_schur_stable(np.diag([0.99]))
        assert not is_schur_stable(np.diag([1.0]))

    def test_hurwitz(self):
        assert is_hurwitz_stable(np.diag([-0.01, -5.0]))
        assert not is_hurwitz_stable(np.diag([0.0, -1.0]))


class TestFrequencyHelpers:
    def test_siso_response_from_tf_and_ss_agree(self):
        tf = TransferFunction([10.0], [1.0, 2.0, 10.0])
        ss = tf.to_ss()
        w = np.logspace(-1, 2, 30)
        assert np.allclose(frequency_response(tf, w), frequency_response(ss, w))

    def test_mimo_rejected(self):
        mimo = StateSpace(np.eye(2) * -1.0, np.eye(2), np.eye(2))
        with pytest.raises(ValueError):
            frequency_response(mimo, [1.0])

    def test_dcgain_continuous(self):
        tf = TransferFunction([4.0], [1.0, 2.0])
        assert dcgain(tf) == pytest.approx(2.0)
        assert dcgain(tf.to_ss()) == pytest.approx(2.0)

    def test_dcgain_discrete(self):
        # y+ = 0.5 y + u -> dc gain 1/(1-0.5) = 2.
        sys_d = StateSpace([[0.5]], [[1.0]], [[1.0]], dt=0.1)
        assert dcgain(sys_d) == pytest.approx(2.0)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            frequency_response("not a system", [1.0])
