"""The open-loop load generator against a real daemon.

Checks the accounting (every arrival lands in exactly one counter), the
latency percentiles, the byte-identity verification path, and the
connection-error handling -- all over real sockets, because the load
generator *is* a socket client.
"""

from __future__ import annotations

import math
import socket

import pytest

from repro.loadgen import (
    LoadGenError,
    LoadGenerator,
    LoadStage,
    encode_stream,
    ramp_stages,
    write_load_artifact,
)
from repro.scenarios.workload import scenario_request_stream
from repro.serve import (
    AnalysisDaemon,
    ServeClientError,
    run_daemon_in_thread,
    wait_until_ready,
)

pytestmark = pytest.mark.loadgen


@pytest.fixture(scope="module")
def stream():
    return scenario_request_stream(
        30, unique=5, repeat_fraction=0.5, seed=17
    )


@pytest.fixture()
def daemon():
    daemon = AnalysisDaemon(port=0, batch_window=0.002)
    thread = run_daemon_in_thread(daemon)
    wait_until_ready(daemon.host, daemon.port)
    yield daemon
    try:
        wait_until_ready(daemon.host, daemon.port, timeout=1.0).shutdown()
    except ServeClientError:
        pass
    thread.join(timeout=10)


class TestAccounting:
    def test_every_arrival_lands_in_one_counter(self, daemon, stream):
        requests, _ = encode_stream(
            stream, host=daemon.host, port=daemon.port
        )
        generator = LoadGenerator(daemon.host, daemon.port, timeout=10.0)
        result = generator.run([LoadStage(rate=150.0, requests=30)], requests)
        totals = result["totals"]
        assert totals["sent"] == 30
        accounted = (
            totals["ok"]
            + totals["http_errors"]
            + totals["connect_errors"]
            + totals["timeouts"]
        )
        assert accounted == totals["sent"]
        assert totals["ok"] == 30
        assert totals["error_rate"] == 0.0

    def test_latency_percentiles_present_and_ordered(self, daemon, stream):
        requests, _ = encode_stream(
            stream, host=daemon.host, port=daemon.port
        )
        generator = LoadGenerator(daemon.host, daemon.port, timeout=10.0)
        result = generator.run([LoadStage(rate=200.0, requests=20)], requests)
        latency = result["stages"][0]["latency_seconds"]
        assert latency["count"] == 20
        assert 0 < latency["p50"] <= latency["p99"] <= latency["p999"]
        assert latency["p999"] <= latency["max"]

    def test_open_loop_stage_duration_tracks_schedule(self, daemon, stream):
        requests, _ = encode_stream(
            stream, host=daemon.host, port=daemon.port
        )
        generator = LoadGenerator(daemon.host, daemon.port, timeout=10.0)
        # 20 requests at 100/s: the arrival schedule alone spans 0.19 s;
        # the stage can't end before its own schedule does.
        result = generator.run([LoadStage(rate=100.0, requests=20)], requests)
        assert result["stages"][0]["duration_seconds"] >= 0.19

    def test_ramp_produces_one_result_per_stage(self, daemon, stream):
        requests, _ = encode_stream(
            stream, host=daemon.host, port=daemon.port
        )
        generator = LoadGenerator(daemon.host, daemon.port, timeout=10.0)
        result = generator.run(ramp_stages([50, 100, 300], 10), requests)
        assert [s["offered_rate"] for s in result["stages"]] == [
            50.0,
            100.0,
            300.0,
        ]
        assert result["totals"]["sent"] == 30


class TestVerification:
    def test_byte_identity_verified_against_facade(self, daemon, stream):
        requests, expected = encode_stream(
            stream, host=daemon.host, port=daemon.port, verify=True
        )
        assert expected is not None and len(expected) == len(requests)
        generator = LoadGenerator(daemon.host, daemon.port, timeout=10.0)
        result = generator.run(
            [LoadStage(rate=200.0, requests=30)], requests, expected=expected
        )
        assert result["verified"] is True
        assert result["totals"]["mismatches"] == 0
        assert result["totals"]["ok"] == 30

    def test_mismatch_detected(self, daemon, stream):
        requests, expected = encode_stream(
            stream[:4], host=daemon.host, port=daemon.port, verify=True
        )
        wrong = [b"not-the-real-body" for _ in expected]
        generator = LoadGenerator(daemon.host, daemon.port, timeout=10.0)
        result = generator.run(
            [LoadStage(rate=100.0, requests=4)], requests, expected=wrong
        )
        assert result["totals"]["mismatches"] == 4


class TestErrors:
    def test_connect_errors_counted(self, stream):
        # A port with no listener: every arrival is a connect error.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        requests, _ = encode_stream(
            stream[:5], host="127.0.0.1", port=free_port
        )
        generator = LoadGenerator("127.0.0.1", free_port, timeout=2.0)
        result = generator.run([LoadStage(rate=100.0, requests=5)], requests)
        assert result["totals"]["connect_errors"] == 5
        assert result["totals"]["ok"] == 0
        assert result["totals"]["error_rate"] == 1.0

    def test_misconfiguration_raises(self, stream):
        with pytest.raises(LoadGenError):
            LoadStage(rate=0.0, requests=5)
        with pytest.raises(LoadGenError):
            LoadStage(rate=10.0, requests=0)
        generator = LoadGenerator()
        with pytest.raises(LoadGenError):
            generator.run([], [b"x"])
        with pytest.raises(LoadGenError):
            generator.run([LoadStage(rate=1.0, requests=1)], [])
        with pytest.raises(LoadGenError):
            encode_stream(stream[:1], host="h", port=1, endpoint="nope")


class TestArtifact:
    def test_canonical_artifact_round_trips(self, daemon, stream, tmp_path):
        import json

        requests, _ = encode_stream(
            stream[:5], host=daemon.host, port=daemon.port
        )
        generator = LoadGenerator(daemon.host, daemon.port, timeout=10.0)
        result = generator.run([LoadStage(rate=100.0, requests=5)], requests)
        path = str(tmp_path / "BENCH_load.json")
        sha = write_load_artifact(path, result)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["canonical_sha256"] == sha
        assert payload["open_loop"] is True
        assert payload["stages"][0]["requests"] == 5
        for value in payload["stages"][0]["latency_seconds"].values():
            assert isinstance(value, (int, float)) and math.isfinite(value)
