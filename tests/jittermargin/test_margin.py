"""Tests of the jitter-margin computation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.jittermargin.margin import (
    closed_loop_with_latency,
    default_frequency_grid,
    jitter_margin,
)


class TestClosedLoop:
    def test_nominal_loop_is_stable_at_zero_latency(self, dc_servo_plant, dc_servo_design):
        closed = closed_loop_with_latency(
            dc_servo_plant.state_space(), dc_servo_design.controller, 0.006, 0.0
        )
        assert closed.is_stable()

    def test_loop_destabilises_at_huge_latency(self, dc_servo_plant, dc_servo_design):
        closed = closed_loop_with_latency(
            dc_servo_plant.state_space(), dc_servo_design.controller, 0.006, 0.05
        )
        assert not closed.is_stable()

    def test_dc_value_is_near_one(self, dc_servo_plant, dc_servo_design):
        # Integrating plant + LQG -> complementary sensitivity ~ 1 at DC.
        closed = closed_loop_with_latency(
            dc_servo_plant.state_space(), dc_servo_design.controller, 0.006, 0.0
        )
        t0 = abs(closed.frequency_response([1.0])[0, 0, 0])
        assert t0 == pytest.approx(1.0, abs=0.1)

    def test_rejects_mismatched_period(self, dc_servo_plant, dc_servo_design):
        with pytest.raises(ModelError):
            closed_loop_with_latency(
                dc_servo_plant.state_space(), dc_servo_design.controller, 0.004, 0.0
            )

    def test_rejects_discrete_plant(self, dc_servo_plant, dc_servo_design):
        from repro.lti.discretize import c2d_zoh

        discrete = c2d_zoh(dc_servo_plant.state_space(), 0.006)
        with pytest.raises(ModelError):
            closed_loop_with_latency(discrete, dc_servo_design.controller, 0.006, 0.0)


class TestJitterMargin:
    def test_positive_at_zero_latency(self, dc_servo_plant, dc_servo_design):
        margin = jitter_margin(
            dc_servo_plant.state_space(), dc_servo_design.controller, 0.006, 0.0
        )
        assert margin > 0.0
        # Fig. 4 ballpark: a few milliseconds for the 6 ms servo loop.
        assert 0.001 < margin < 0.05

    def test_decreases_with_latency(self, dc_servo_plant, dc_servo_design):
        grid = default_frequency_grid(0.006)
        margins = [
            jitter_margin(
                dc_servo_plant.state_space(),
                dc_servo_design.controller,
                0.006,
                latency,
                omega=grid,
            )
            for latency in (0.0, 0.002, 0.004, 0.006)
        ]
        assert all(np.isfinite(margins))
        assert margins == sorted(margins, reverse=True)

    def test_nan_when_nominal_loop_unstable(self, dc_servo_plant, dc_servo_design):
        margin = jitter_margin(
            dc_servo_plant.state_space(), dc_servo_design.controller, 0.006, 0.05
        )
        assert math.isnan(margin)

    def test_small_gain_verdict_validated_by_cosimulation(
        self, dc_servo_plant, dc_servo_design
    ):
        """A jitter well inside the margin must not destabilise the
        co-simulated loop (the margin is sufficient, not necessary)."""
        from repro.rta.taskset import Task, TaskSet
        from repro.sim.cosim import cosimulate_control_task
        from repro.sim.workload import UniformExecution

        h = 0.006
        margin = jitter_margin(
            dc_servo_plant.state_space(), dc_servo_design.controller, h, 0.0
        )
        safe_jitter = 0.5 * margin
        tasks = TaskSet(
            [
                Task(
                    name="ctl",
                    period=h,
                    wcet=max(safe_jitter, 1e-5),
                    bcet=1e-6 if safe_jitter > 1e-6 else 5e-7,
                    priority=1,
                )
            ]
        )
        result = cosimulate_control_task(
            tasks,
            "ctl",
            dc_servo_plant.state_space(),
            dc_servo_design,
            duration=3.0,
            execution_model=UniformExecution(),
            x0=[0.01, 0.0],
        )
        assert not result.diverged


class TestFrequencyGrid:
    def test_grid_ends_at_nyquist(self):
        grid = default_frequency_grid(0.01)
        assert grid[-1] == pytest.approx(math.pi / 0.01)

    def test_grid_is_increasing_positive(self):
        grid = default_frequency_grid(0.004)
        assert np.all(grid > 0)
        assert np.all(np.diff(grid) > 0)
