"""Tests of stability-curve construction and queries."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.jittermargin.curve import StabilityCurve, stability_curve


@pytest.fixture
def servo_curve(dc_servo_plant, dc_servo_design):
    return stability_curve(
        dc_servo_plant.state_space(), dc_servo_design.controller, 0.006, points=25
    )


class TestStabilityCurveObject:
    def test_validation_rejects_misaligned_grids(self):
        with pytest.raises(ModelError):
            StabilityCurve(
                h=0.01, latencies=np.array([0.0, 1.0]), margins=np.array([1.0])
            )

    def test_validation_rejects_non_increasing_latencies(self):
        with pytest.raises(ModelError):
            StabilityCurve(
                h=0.01,
                latencies=np.array([0.0, 0.0, 1.0]),
                margins=np.array([1.0, 1.0, 1.0]),
            )

    def test_margin_interpolation(self):
        curve = StabilityCurve(
            h=0.01,
            latencies=np.array([0.0, 1.0, 2.0]),
            margins=np.array([4.0, 2.0, 0.0]),
        )
        assert curve.margin_at(0.5) == pytest.approx(3.0)
        assert curve.margin_at(2.0) == pytest.approx(0.0)

    def test_margin_beyond_stable_range_is_nan(self):
        curve = StabilityCurve(
            h=0.01,
            latencies=np.array([0.0, 1.0, 2.0]),
            margins=np.array([2.0, 0.5, float("nan")]),
        )
        assert math.isnan(curve.margin_at(1.5))
        assert curve.max_stable_latency == pytest.approx(1.0)

    def test_is_stable_uses_curve(self):
        curve = StabilityCurve(
            h=0.01,
            latencies=np.array([0.0, 1.0]),
            margins=np.array([2.0, 1.0]),
        )
        assert curve.is_stable(0.5, 1.4)
        assert not curve.is_stable(0.5, 1.6)
        assert not curve.is_stable(3.0, 0.0)


class TestStabilityCurveSweep:
    def test_monotone_decreasing_margins(self, servo_curve):
        finite = ~np.isnan(servo_curve.margins)
        values = servo_curve.margins[finite]
        assert np.all(np.diff(values) <= 1e-12)

    def test_curve_starts_stable(self, servo_curve):
        assert not math.isnan(servo_curve.margins[0])
        assert servo_curve.margins[0] > 0

    def test_curve_eventually_dies(self, servo_curve):
        # Within 2h of latency the servo loop must lose stability.
        assert np.any(np.isnan(servo_curve.margins))

    def test_custom_latency_grid(self, dc_servo_plant, dc_servo_design):
        lats = [0.0, 0.001, 0.002]
        curve = stability_curve(
            dc_servo_plant.state_space(),
            dc_servo_design.controller,
            0.006,
            latencies=lats,
        )
        assert np.allclose(curve.latencies, lats)
        assert curve.label == ""
