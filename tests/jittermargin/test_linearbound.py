"""Tests of the linear stability bound (eq. (5)) and its fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.plants import get_plant
from repro.errors import ModelError
from repro.jittermargin.curve import StabilityCurve
from repro.jittermargin.linearbound import (
    LinearStabilityBound,
    fit_linear_bound,
    stability_bound_for_plant,
)


class TestLinearStabilityBound:
    def test_constraint_check(self):
        bound = LinearStabilityBound(a=2.0, b=10.0)
        assert bound.is_stable(4.0, 3.0)       # 4 + 6 = 10 <= 10
        assert not bound.is_stable(4.0, 3.01)

    def test_slack_sign(self):
        bound = LinearStabilityBound(a=1.5, b=6.0)
        assert bound.slack(3.0, 1.0) == pytest.approx(1.5)
        assert bound.slack(6.0, 1.0) == pytest.approx(-1.5)

    def test_paper_requires_a_at_least_one(self):
        with pytest.raises(ModelError):
            LinearStabilityBound(a=0.5, b=1.0)

    def test_paper_requires_b_nonnegative(self):
        with pytest.raises(ModelError):
            LinearStabilityBound(a=1.0, b=-0.1)

    def test_never_stable_bound(self):
        bound = LinearStabilityBound(a=1.0, b=0.0)
        assert not bound.is_stable(1e-9, 0.0)
        assert bound.is_stable(0.0, 0.0)


class TestFitLinearBound:
    def test_fitted_line_is_below_curve(self):
        curve = StabilityCurve(
            h=0.01,
            latencies=np.array([0.0, 1.0, 2.0, 3.0]),
            margins=np.array([3.0, 2.2, 1.0, float("nan")]),
        )
        bound = fit_linear_bound(curve)
        assert bound.b == pytest.approx(2.0)
        for latency, margin in zip(curve.latencies, curve.margins):
            if np.isnan(margin) or latency >= bound.b:
                continue
            line = (bound.b - latency) / bound.a
            assert line <= margin + 1e-12

    def test_unstable_everywhere_gives_degenerate_bound(self):
        curve = StabilityCurve(
            h=0.01,
            latencies=np.array([0.0, 1.0]),
            margins=np.array([float("nan"), float("nan")]),
        )
        bound = fit_linear_bound(curve)
        assert bound.b == 0.0

    def test_infinite_margins_do_not_constrain_slope(self):
        curve = StabilityCurve(
            h=0.01,
            latencies=np.array([0.0, 1.0, 2.0]),
            margins=np.array([float("inf"), 0.9, 0.0]),
        )
        bound = fit_linear_bound(curve)
        assert bound.a == pytest.approx((2.0 - 1.0) / 0.9)

    def test_slope_respects_minimum_one(self):
        # A very shallow curve still produces a >= 1 (paper's convention).
        curve = StabilityCurve(
            h=0.01,
            latencies=np.array([0.0, 1.0, 2.0]),
            margins=np.array([100.0, 50.0, 0.0]),
        )
        assert fit_linear_bound(curve).a == 1.0


class TestPlantLevelBound:
    def test_dc_servo_bound_matches_fig4_ballpark(self):
        plant = get_plant("dc_servo")
        bound = stability_bound_for_plant(plant, 0.006, exact_period=True)
        # Fig. 4: a slightly above 1, latency budget around one period.
        assert 1.0 <= bound.a < 2.0
        assert 0.004 < bound.b < 0.02

    def test_bucketing_caches_nearby_periods(self):
        plant = get_plant("dc_servo")
        b1 = stability_bound_for_plant(plant, 0.00600)
        b2 = stability_bound_for_plant(plant, 0.00603)  # same 4% bucket
        assert b1 is b2  # identical cached object

    def test_exact_period_bypasses_cache(self):
        plant = get_plant("dc_servo")
        b1 = stability_bound_for_plant(plant, 0.006, exact_period=True)
        b2 = stability_bound_for_plant(plant, 0.006, exact_period=True)
        assert b1 is not b2
        assert b1.a == pytest.approx(b2.a)

    def test_rejects_nonpositive_period(self):
        plant = get_plant("dc_servo")
        with pytest.raises(ModelError):
            stability_bound_for_plant(plant, 0.0)
