"""Equivalence tests of the population kernel tier (frequency half).

:func:`repro.jittermargin.popmargin.population_margins` promises *bit
identity* with the serial ``[jitter_margin(...) for latency in sweep]``
loop: the stacked discretisation, closed-loop assembly, and pencil
solves are slice-exact, the fast residue screen only *selects* candidate
frequencies, and every guard failure reruns the scalar path.  The suite
pins that across the plant library, and pins the stacked discretisation
(:func:`repro.lti.discretize.c2d_zoh_delay_stacks`) slice-by-slice
against the scalar :func:`~repro.lti.discretize.c2d_zoh_delay`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.lqg import design_lqg_for_plant
from repro.control.plants import PLANT_LIBRARY, get_plant
from repro.jittermargin.margin import default_frequency_grid, jitter_margin
from repro.jittermargin.popmargin import (
    MIN_CURVE_POPULATION,
    population_margins,
)
from repro.lti.discretize import c2d_zoh_delay, c2d_zoh_delay_stacks

#: Plants whose LQG design is well posed at this period; the sweep spans
#: latencies beyond the stable range so NaN rows are exercised too.
_PLANTS = ["dc_servo", "integrator", "double_integrator", "harmonic_oscillator"]
_H = 0.006


def _loop(name):
    plant = get_plant(name).state_space()
    controller = design_lqg_for_plant(name, _H).controller
    return plant, controller


def _scalar_margins(plant, controller, latencies, omega):
    return np.array(
        [jitter_margin(plant, controller, _H, l, omega=omega) for l in latencies]
    )


class TestPopulationMarginsEquivalence:
    @pytest.mark.parametrize("name", _PLANTS)
    def test_latency_sweep_matches_scalar_loop(self, name):
        plant, controller = _loop(name)
        latencies = np.linspace(0.0, 2.0 * _H, 41)
        omega = default_frequency_grid(_H)
        got = population_margins(
            plant, controller, _H, latencies, omega=omega,
            population_kernel=True,
        )
        want = _scalar_margins(plant, controller, latencies, omega)
        # assert_array_equal is bitwise on floats and treats NaN == NaN.
        np.testing.assert_array_equal(got, want)

    def test_small_sweep_runs_scalar_tier(self):
        plant, controller = _loop("dc_servo")
        latencies = np.linspace(0.0, _H, MIN_CURVE_POPULATION - 1)
        omega = default_frequency_grid(_H)
        np.testing.assert_array_equal(
            population_margins(plant, controller, _H, latencies, omega=omega),
            _scalar_margins(plant, controller, latencies, omega),
        )

    def test_escape_hatch_matches(self):
        plant, controller = _loop("dc_servo")
        latencies = np.linspace(0.0, 2.0 * _H, 17)
        omega = default_frequency_grid(_H)
        np.testing.assert_array_equal(
            population_margins(
                plant, controller, _H, latencies, omega=omega,
                population_kernel="off",
            ),
            _scalar_margins(plant, controller, latencies, omega),
        )

    def test_empty_sweep(self):
        plant, controller = _loop("dc_servo")
        assert population_margins(plant, controller, _H, []).size == 0


class TestC2dZohDelayStacks:
    @pytest.mark.parametrize("name", sorted(PLANT_LIBRARY))
    def test_slices_equal_scalar_discretisation(self, name):
        # Delay-free, fractional, exact-multiple, and multi-period
        # delays: every d_steps group of the stacked call must be
        # bitwise equal to the per-delay scalar call.
        system = get_plant(name).state_space()
        h = 0.01
        delays = [0.0, 0.25 * h, 0.5 * h, h, 1.5 * h, 2.0 * h, 2.75 * h]
        grouped = c2d_zoh_delay_stacks(system, h, delays)
        covered = []
        for _, (indices, a, b, c, d) in grouped.items():
            for j, k in enumerate(indices):
                covered.append(k)
                scalar = c2d_zoh_delay(system, h, delays[k])
                assert np.array_equal(a[j], scalar.a)
                assert np.array_equal(b[j], scalar.b)
                assert np.array_equal(c[j], scalar.c)
                assert np.array_equal(d[j], scalar.d)
        assert sorted(covered) == list(range(len(delays)))

    def test_empty_delay_list(self):
        system = get_plant("dc_servo").state_space()
        assert c2d_zoh_delay_stacks(system, 0.01, []) == {}
