"""Tests of the DARE solver (SDA) against scipy and first principles."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.errors import DimensionError, RiccatiError
from repro.linalg.riccati import dare_gain, solve_dare


@pytest.fixture
def double_integrator():
    a = np.array([[1.0, 0.1], [0.0, 1.0]])
    b = np.array([[0.005], [0.1]])
    return a, b


class TestSolveDare:
    def test_matches_scipy(self, double_integrator):
        a, b = double_integrator
        x = solve_dare(a, b, np.eye(2), np.array([[0.1]]))
        expected = sla.solve_discrete_are(a, b, np.eye(2), np.array([[0.1]]))
        assert np.allclose(x, expected, rtol=1e-8)

    def test_matches_scipy_with_cross_term(self, double_integrator):
        a, b = double_integrator
        n_cross = np.array([[0.02], [0.01]])
        x = solve_dare(a, b, np.eye(2), np.array([[0.1]]), n_cross)
        expected = sla.solve_discrete_are(
            a, b, np.eye(2), np.array([[0.1]]), s=n_cross
        )
        assert np.allclose(x, expected, rtol=1e-8)

    def test_residual_is_small(self, rng):
        for _ in range(10):
            n = int(rng.integers(2, 5))
            a = rng.standard_normal((n, n)) * 0.9
            b = rng.standard_normal((n, 1))
            q = np.eye(n)
            r = np.array([[1.0]])
            x = solve_dare(a, b, q, r)
            gain = np.linalg.solve(r + b.T @ x @ b, b.T @ x @ a)
            residual = a.T @ x @ a - x + q - (a.T @ x @ b) @ gain
            assert np.linalg.norm(residual) < 1e-7 * max(1.0, np.linalg.norm(x))

    def test_solution_is_psd(self, double_integrator):
        a, b = double_integrator
        x = solve_dare(a, b, np.eye(2), np.array([[1.0]]))
        assert np.all(np.linalg.eigvalsh(x) >= -1e-10)

    def test_stable_a_zero_q_gives_zero(self):
        a = np.array([[0.5]])
        x = solve_dare(a, np.array([[1.0]]), np.zeros((1, 1)), np.array([[1.0]]))
        assert np.allclose(x, 0.0, atol=1e-9)

    def test_unstabilisable_pair_raises(self):
        # Unstable mode not reachable from the input.
        a = np.diag([2.0, 0.5])
        b = np.array([[0.0], [1.0]])
        with pytest.raises(RiccatiError):
            solve_dare(a, b, np.eye(2), np.array([[1.0]]))

    def test_singular_r_raises(self, double_integrator):
        a, b = double_integrator
        with pytest.raises(RiccatiError):
            solve_dare(a, b, np.eye(2), np.zeros((1, 1)))

    def test_dimension_checks(self, double_integrator):
        a, b = double_integrator
        with pytest.raises(DimensionError):
            solve_dare(a, b, np.eye(3), np.array([[1.0]]))
        with pytest.raises(DimensionError):
            solve_dare(a, b, np.eye(2), np.array([[1.0]]), np.zeros((3, 1)))


class TestDareGain:
    def test_closed_loop_is_stable(self, double_integrator):
        a, b = double_integrator
        _, gain = dare_gain(a, b, np.eye(2), np.array([[0.1]]))
        closed = a - b @ gain
        assert np.max(np.abs(np.linalg.eigvals(closed))) < 1.0

    def test_gain_is_optimal_among_perturbations(self, double_integrator):
        # Perturbing the optimal gain never decreases the LQR cost
        # (evaluated via the closed-loop Lyapunov equation).
        from repro.linalg.lyapunov import solve_dlyap

        a, b = double_integrator
        q, r = np.eye(2), np.array([[0.1]])
        _, gain = dare_gain(a, b, q, r)

        def lqr_cost(k):
            closed = a - b @ k
            if np.max(np.abs(np.linalg.eigvals(closed))) >= 1.0:
                return np.inf
            # Cost of white process noise with unit covariance.
            sigma = solve_dlyap(closed, np.eye(2))
            return float(np.trace((q + k.T @ r @ k) @ sigma))

        base = lqr_cost(gain)
        rng = np.random.default_rng(7)
        for _ in range(20):
            assert lqr_cost(gain + 0.05 * rng.standard_normal(gain.shape)) >= base - 1e-9

    def test_cross_term_gain_formula(self, double_integrator):
        a, b = double_integrator
        q, r = np.eye(2), np.array([[0.1]])
        n_cross = np.array([[0.01], [0.02]])
        x, gain = dare_gain(a, b, q, r, n_cross)
        expected = np.linalg.solve(r + b.T @ x @ b, b.T @ x @ a + n_cross.T)
        assert np.allclose(gain, expected)
