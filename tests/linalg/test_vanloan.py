"""Tests of the Van Loan block-exponential integrals against quadrature."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro.errors import DimensionError
from repro.linalg.vanloan import (
    vanloan_cost,
    vanloan_double_integral,
    vanloan_dynamics_noise,
)


def _gramian_quadrature(a, q, h, transpose_left=True, points=4001):
    """integral_0^h e^{A' s} Q e^{A s} ds by trapezoid rule."""
    grid = np.linspace(0.0, h, points)
    vals = np.array(
        [
            (sla.expm(a.T * s) if transpose_left else sla.expm(a * s))
            @ q
            @ (sla.expm(a * s) if transpose_left else sla.expm(a.T * s))
            for s in grid
        ]
    )
    return np.trapezoid(vals, grid, axis=0)


@pytest.fixture
def stable_pair():
    a = np.array([[-0.3, 1.0], [0.0, -0.5]])
    r1 = np.array([[1.0, 0.2], [0.2, 2.0]])
    return a, r1


class TestDynamicsNoise:
    def test_transition_matrix(self, stable_pair):
        a, r1 = stable_pair
        phi, _ = vanloan_dynamics_noise(a, r1, 0.7)
        assert np.allclose(phi, sla.expm(a * 0.7))

    def test_noise_integral_matches_quadrature(self, stable_pair):
        a, r1 = stable_pair
        _, r1d = vanloan_dynamics_noise(a, r1, 0.7)
        expected = _gramian_quadrature(a, r1, 0.7, transpose_left=False)
        assert np.allclose(r1d, expected, atol=1e-6)

    def test_zero_interval(self, stable_pair):
        a, r1 = stable_pair
        phi, r1d = vanloan_dynamics_noise(a, r1, 0.0)
        assert np.allclose(phi, np.eye(2))
        assert np.allclose(r1d, 0.0)

    def test_result_is_symmetric_psd(self, stable_pair):
        a, r1 = stable_pair
        _, r1d = vanloan_dynamics_noise(a, r1, 2.0)
        assert np.allclose(r1d, r1d.T)
        assert np.all(np.linalg.eigvalsh(r1d) >= -1e-12)

    def test_additivity_over_intervals(self, stable_pair):
        # R1d(t+s) = R1d(t) + Phi(t) R1d(s) Phi(t)'.
        a, r1 = stable_pair
        phi_t, r_t = vanloan_dynamics_noise(a, r1, 0.4)
        _, r_s = vanloan_dynamics_noise(a, r1, 0.3)
        _, r_total = vanloan_dynamics_noise(a, r1, 0.7)
        assert np.allclose(r_total, r_t + phi_t @ r_s @ phi_t.T, atol=1e-10)

    def test_rejects_mismatched_shapes(self, stable_pair):
        a, _ = stable_pair
        with pytest.raises(DimensionError):
            vanloan_dynamics_noise(a, np.eye(3), 0.5)

    def test_rejects_negative_interval(self, stable_pair):
        a, r1 = stable_pair
        with pytest.raises(DimensionError):
            vanloan_dynamics_noise(a, r1, -0.1)


class TestCostSampling:
    def test_cost_matches_quadrature(self):
        a_bar = np.array([[0.0, 1.0, 0.0], [0.0, -1.0, 1.0], [0.0, 0.0, 0.0]])
        q_bar = np.diag([1.0, 0.5, 0.2])
        _, q_d = vanloan_cost(a_bar, q_bar, 0.7)
        expected = _gramian_quadrature(a_bar, q_bar, 0.7)
        assert np.allclose(q_d, expected, atol=1e-6)

    def test_returns_transition_of_augmented_system(self):
        a_bar = np.array([[0.0, 1.0], [0.0, 0.0]])
        phi_bar, _ = vanloan_cost(a_bar, np.eye(2), 0.5)
        assert np.allclose(phi_bar, sla.expm(a_bar * 0.5))

    def test_cost_monotone_in_interval(self):
        # Integrand is PSD, so the integral grows with h.
        a_bar = np.array([[0.0, 1.0], [-1.0, -0.2]])
        q_bar = np.eye(2)
        _, q_small = vanloan_cost(a_bar, q_bar, 0.3)
        _, q_large = vanloan_cost(a_bar, q_bar, 0.9)
        assert np.all(np.linalg.eigvalsh(q_large - q_small) >= -1e-10)


class TestDoubleIntegral:
    @pytest.mark.slow
    def test_matches_nested_quadrature(self, stable_pair):
        a, r1 = stable_pair
        q1 = np.diag([1.0, 0.5])
        h = 0.7
        value = vanloan_double_integral(a, q1, r1, h)
        outer = np.linspace(0.0, h, 201)
        inner_vals = []
        for s in outer:
            grid = np.linspace(0.0, s, 201)
            vals = np.array(
                [sla.expm(a * r) @ r1 @ sla.expm(a.T * r) for r in grid]
            )
            p_s = np.trapezoid(vals, grid, axis=0)
            inner_vals.append(np.trace(q1 @ p_s))
        expected = np.trapezoid(inner_vals, outer)
        assert np.isclose(value, expected, rtol=1e-3)

    def test_zero_noise_gives_zero(self, stable_pair):
        a, _ = stable_pair
        assert vanloan_double_integral(a, np.eye(2), np.zeros((2, 2)), 1.0) == 0.0

    def test_scales_linearly_in_noise(self, stable_pair):
        a, r1 = stable_pair
        q1 = np.eye(2)
        one = vanloan_double_integral(a, q1, r1, 0.5)
        three = vanloan_double_integral(a, q1, 3.0 * r1, 0.5)
        assert np.isclose(three, 3.0 * one, rtol=1e-10)

    def test_grows_with_interval(self, stable_pair):
        a, r1 = stable_pair
        q1 = np.eye(2)
        assert vanloan_double_integral(a, q1, r1, 1.0) > vanloan_double_integral(
            a, q1, r1, 0.5
        )
