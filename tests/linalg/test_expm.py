"""Tests of the Pade scaling-and-squaring matrix exponential."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DimensionError
from repro.linalg.expm import expm


class TestExpmBasics:
    def test_zero_matrix_gives_identity(self):
        assert np.allclose(expm(np.zeros((3, 3))), np.eye(3))

    def test_scalar_matrix(self):
        assert np.allclose(expm(np.array([[2.0]])), [[np.exp(2.0)]])

    def test_empty_matrix(self):
        assert expm(np.zeros((0, 0))).shape == (0, 0)

    def test_diagonal_matrix(self):
        d = np.diag([1.0, -2.0, 0.5])
        assert np.allclose(expm(d), np.diag(np.exp([1.0, -2.0, 0.5])))

    def test_nilpotent_matrix_exact(self):
        # exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly.
        n = np.array([[0.0, 1.0], [0.0, 0.0]])
        assert np.allclose(expm(n), [[1.0, 1.0], [0.0, 1.0]])

    def test_rotation_generator(self):
        # exp(theta * J) is a rotation matrix.
        theta = 0.7
        j = np.array([[0.0, -theta], [theta, 0.0]])
        expected = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        assert np.allclose(expm(j), expected)

    def test_rejects_non_square(self):
        with pytest.raises(DimensionError):
            expm(np.zeros((2, 3)))

    def test_rejects_non_finite(self):
        with pytest.raises(DimensionError):
            expm(np.array([[np.inf, 0.0], [0.0, 1.0]]))


class TestExpmAgainstScipy:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("scale", [0.01, 1.0, 30.0])
    def test_random_matrices(self, n, scale, rng):
        a = rng.standard_normal((n, n)) * scale
        assert np.allclose(expm(a), sla.expm(a), rtol=1e-8, atol=1e-8)

    def test_stiff_matrix(self, rng):
        # Widely separated eigenvalues exercise the squaring phase.
        a = np.diag([-1000.0, -1.0, -0.001]) + 0.1 * rng.standard_normal((3, 3))
        assert np.allclose(expm(a), sla.expm(a), rtol=1e-7, atol=1e-9)

    def test_defective_matrix(self):
        # Jordan block: exp has polynomial off-diagonal terms.
        a = np.array([[2.0, 1.0, 0.0], [0.0, 2.0, 1.0], [0.0, 0.0, 2.0]])
        assert np.allclose(expm(a), sla.expm(a), rtol=1e-10)


class TestExpmProperties:
    @given(
        arrays(
            np.float64,
            (3, 3),
            elements=st.floats(-3.0, 3.0, allow_nan=False),
        )
    )
    def test_inverse_property(self, a):
        # e^A e^{-A} = I for any square A.
        product = expm(a) @ expm(-a)
        assert np.allclose(product, np.eye(3), atol=1e-8)

    @given(
        arrays(
            np.float64,
            (3, 3),
            elements=st.floats(-2.0, 2.0, allow_nan=False),
        ),
        st.floats(0.1, 2.0),
    )
    def test_semigroup_property(self, a, t):
        # e^{A(t+s)} = e^{At} e^{As} when the exponents commute (same A).
        left = expm(a * (t + 1.0))
        right = expm(a * t) @ expm(a * 1.0)
        assert np.allclose(left, right, rtol=1e-7, atol=1e-7)

    @given(
        arrays(
            np.float64,
            (4, 4),
            elements=st.floats(-2.0, 2.0, allow_nan=False),
        )
    )
    def test_determinant_is_exp_trace(self, a):
        # det(e^A) = e^{tr A} (Jacobi's formula).
        det = np.linalg.det(expm(a))
        assert np.isclose(det, np.exp(np.trace(a)), rtol=1e-6)
