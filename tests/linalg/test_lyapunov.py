"""Tests of the discrete/continuous Lyapunov solvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DimensionError, NumericalError
from repro.linalg.lyapunov import solve_clyap, solve_dlyap


class TestDlyap:
    def test_residual_is_zero(self, rng):
        a = 0.9 * _random_contraction(rng, 4)
        q = _random_psd(rng, 4)
        x = solve_dlyap(a, q)
        assert np.allclose(x, a @ x @ a.T + q, atol=1e-9)

    def test_scalar_case(self):
        # x = a^2 x + q  ->  x = q / (1 - a^2).
        x = solve_dlyap(np.array([[0.5]]), np.array([[3.0]]))
        assert np.isclose(x[0, 0], 3.0 / (1 - 0.25))

    def test_solution_is_symmetric_psd(self, rng):
        a = 0.8 * _random_contraction(rng, 5)
        q = _random_psd(rng, 5)
        x = solve_dlyap(a, q)
        assert np.allclose(x, x.T)
        assert np.all(np.linalg.eigvalsh(x) >= -1e-10)

    def test_unstable_matrix_raises(self):
        with pytest.raises(NumericalError):
            solve_dlyap(np.array([[1.5]]), np.array([[1.0]]))

    def test_marginally_stable_raises(self):
        with pytest.raises(NumericalError):
            solve_dlyap(np.array([[1.0]]), np.array([[1.0]]))

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            solve_dlyap(np.eye(2), np.eye(3))

    @given(st.floats(-0.95, 0.95), st.floats(0.1, 10.0))
    def test_scalar_closed_form(self, a, q):
        x = solve_dlyap(np.array([[a]]), np.array([[q]]))
        assert np.isclose(x[0, 0], q / (1 - a * a), rtol=1e-9)


class TestClyap:
    def test_residual_is_zero(self, rng):
        a = _random_hurwitz(rng, 4)
        q = _random_psd(rng, 4)
        x = solve_clyap(a, q)
        assert np.allclose(a @ x + x @ a.T + q, 0.0, atol=1e-9)

    def test_scalar_case(self):
        # a x + x a + q = 0 -> x = -q / (2a).
        x = solve_clyap(np.array([[-2.0]]), np.array([[4.0]]))
        assert np.isclose(x[0, 0], 1.0)

    def test_observability_gramian_interpretation(self, rng):
        # For stable A, X = integral e^{As} Q e^{A's} ds solves the equation.
        import scipy.linalg as sla

        a = _random_hurwitz(rng, 3)
        q = _random_psd(rng, 3)
        x = solve_clyap(a, q)
        grid = np.linspace(0.0, 60.0, 12001)
        vals = np.array([sla.expm(a * s) @ q @ sla.expm(a.T * s) for s in grid])
        estimate = np.trapezoid(vals, grid, axis=0)
        assert np.allclose(x, estimate, atol=1e-4)

    def test_singular_operator_raises(self):
        # Eigenvalues +1 and -1 sum to zero: operator singular.
        a = np.diag([1.0, -1.0])
        with pytest.raises(NumericalError):
            solve_clyap(a, np.eye(2))


def _random_contraction(rng, n):
    a = rng.standard_normal((n, n))
    return a / (np.max(np.abs(np.linalg.eigvals(a))) + 1e-9)


def _random_psd(rng, n):
    m = rng.standard_normal((n, n))
    return m @ m.T + 0.1 * np.eye(n)


def _random_hurwitz(rng, n):
    a = rng.standard_normal((n, n))
    return a - (np.max(np.linalg.eigvals(a).real) + 0.5) * np.eye(n)
