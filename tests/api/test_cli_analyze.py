"""End-to-end tests of ``python -m repro analyze``."""

from __future__ import annotations

import json

from repro.api import SCHEMA_VERSION
from repro.cli import main


def _system_dict(name="cli-demo"):
    return {
        "name": name,
        "priority_policy": "backtracking",
        "tasks": [
            {
                "name": "ctl",
                "period": 0.01,
                "wcet": 0.002,
                "bcet": 0.001,
                "stability": {"a": 1.2, "b": 0.008},
            },
            {"name": "bg", "period": 0.05, "wcet": 0.01},
        ],
    }


def test_analyze_single_system(tmp_path, capsys):
    model = tmp_path / "system.json"
    model.write_text(json.dumps(_system_dict()))
    out = tmp_path / "report.json"
    assert main(["analyze", str(model), "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Analysis of 'cli-demo'" in printed
    assert "1 stable" in printed
    report = json.loads(out.read_text())
    assert report["schema_version"] == SCHEMA_VERSION
    assert report["stable"] is True
    assert len(report["canonical_sha256"]) == 64


def test_analyze_unstable_system_exits_nonzero(tmp_path, capsys):
    # Deadlines hold under the given priorities, but the control task's
    # jitter-heavy interface violates its (tight) linear bound.
    model = tmp_path / "system.json"
    model.write_text(
        json.dumps(
            {
                "name": "shaky",
                "tasks": [
                    {
                        "name": "ctl",
                        "period": 0.05,
                        "wcet": 0.004,
                        "bcet": 0.002,
                        "priority": 1,
                        "stability": {"a": 1.5, "b": 0.005},
                    },
                    {
                        "name": "hog",
                        "period": 0.02,
                        "wcet": 0.006,
                        "priority": 2,
                    },
                ],
            }
        )
    )
    assert main(["analyze", str(model)]) == 1
    printed = capsys.readouterr().out
    assert "VIOLATED" in printed
    assert "1 violating" in printed


def test_analyze_batch_with_jobs(tmp_path, capsys):
    model = tmp_path / "systems.json"
    model.write_text(
        json.dumps(
            {"systems": [_system_dict("s1"), _system_dict("s2")]}
        )
    )
    out = tmp_path / "reports.json"
    assert main(
        ["analyze", str(model), "--jobs", "2", "--out", str(out)]
    ) == 0
    envelope = json.loads(out.read_text())
    assert envelope["schema_version"] == SCHEMA_VERSION
    assert envelope["n_systems"] == 2
    assert [r["name"] for r in envelope["reports"]] == ["s1", "s2"]


def test_analyze_policy_override(tmp_path, capsys):
    entry = _system_dict()
    del entry["priority_policy"]
    entry["tasks"][0]["priority"] = 2
    entry["tasks"][1]["priority"] = 1
    model = tmp_path / "system.json"
    model.write_text(json.dumps(entry))
    assert main(["analyze", str(model), "--policy", "rate_monotonic"]) == 0
    assert "rate_monotonic" in capsys.readouterr().out


def test_analyze_bad_policy_reports_error(tmp_path, capsys):
    model = tmp_path / "system.json"
    model.write_text(json.dumps(_system_dict()))
    assert main(["analyze", str(model), "--policy", "magic"]) == 2
    assert "unknown priority policy" in capsys.readouterr().err


def test_analyze_missing_file_exits_2(tmp_path, capsys):
    assert main(["analyze", str(tmp_path / "nope.json")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_analyze_invalid_json_exits_2(tmp_path, capsys):
    model = tmp_path / "system.json"
    model.write_text("{not json")
    assert main(["analyze", str(model)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_analyze_malformed_task_entry_exits_2(tmp_path, capsys):
    model = tmp_path / "system.json"
    model.write_text(json.dumps({"tasks": [{"name": "a"}]}))
    assert main(["analyze", str(model)]) == 2
    assert "missing required field" in capsys.readouterr().err


def test_analyze_name_with_batch_rejected(tmp_path, capsys):
    model = tmp_path / "systems.json"
    model.write_text(json.dumps({"systems": [_system_dict("s1")]}))
    assert main(["analyze", str(model), "--name", "x"]) == 2
    assert "single-system" in capsys.readouterr().err
