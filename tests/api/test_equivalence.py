"""Equivalence pinning: the façade vs the legacy per-module plumbing.

Before the façade, every consumer package hand-plumbed RTA -> (L, J) ->
margin.  These tests pin that :func:`repro.api.analyze` /
:func:`repro.api.task_verdict` reproduce that plumbing *byte-for-byte*
(verdicts and interfaces serialised to canonical JSON) on hundreds of
random UUniFast control task sets, so the consumer refactors cannot have
changed a single verdict.
"""

from __future__ import annotations

import json

import numpy as np

from repro.api import analyze, analyze_batch, task_verdict
from repro.api.service import assign
from repro.memo import AnalysisMemo
from repro.benchgen.uunifast import uunifast
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.batch import analyze_taskset
from repro.rta.interface import latency_jitter
from repro.rta.taskset import Task, TaskSet
from repro.sweep.result import encode_nonfinite

#: Task sets checked by the byte-match sweeps (ISSUE floor: >= 200).
N_TASKSETS = 250


def _random_control_taskset(rng: np.random.Generator, n: int) -> TaskSet:
    """A priority-assigned UUniFast set; some tasks carry linear bounds."""
    utilization = float(rng.uniform(0.3, 0.95))
    shares = uunifast(n, utilization, rng)
    periods = rng.choice([1.0, 2.0, 2.5, 4.0, 5.0, 8.0, 10.0, 20.0], size=n)
    order = rng.permutation(n)
    tasks = []
    for k, (share, period) in enumerate(zip(shares, periods)):
        wcet = min(max(share * period, 1e-6), period)
        bcet = max(wcet * float(rng.uniform(0.2, 1.0)), 1e-9)
        stability = None
        if rng.uniform() < 0.7:
            stability = LinearStabilityBound(
                a=1.0 + float(rng.uniform(0.0, 1.5)),
                b=float(period) * float(rng.uniform(0.1, 1.2)),
            )
        tasks.append(
            Task(
                name=f"t{k}",
                period=float(period),
                wcet=float(wcet),
                bcet=float(bcet),
                priority=int(order[k]) + 1,
                stability=stability,
            )
        )
    return TaskSet(tasks)


def _legacy_verdicts(taskset: TaskSet) -> dict:
    """The pre-façade per-module plumbing, inlined verbatim.

    This is the loop that ``assignment.validate``, the anomaly
    detectors, and the scenario harness each re-implemented: per-task
    scalar RTA, then deadline + bound checks, then the slack.
    """
    verdicts = {}
    for task in taskset:
        times = latency_jitter(task, taskset.higher_priority(task))
        deadline_met = times.finite
        if task.stability is None:
            stable = True
            slack = None
        elif not deadline_met:
            stable = False
            slack = float("-inf")
        else:
            stable = bool(
                task.stability.is_stable(times.latency, times.jitter)
            )
            slack = float(task.stability.slack(times.latency, times.jitter))
        verdicts[task.name] = {
            "deadline_met": deadline_met,
            "stable": stable,
            "ok": deadline_met and stable,
            "slack": slack,
        }
    return {
        "valid": all(v["ok"] for v in verdicts.values()),
        "violating": [
            t.name for t in taskset if not verdicts[t.name]["ok"]
        ],
        "tasks": verdicts,
    }


def _canon(payload) -> str:
    return json.dumps(
        encode_nonfinite(payload),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


class TestAnalyzeEquivalence:
    def test_verdicts_byte_match_legacy_plumbing(self):
        """analyze() verdicts == the hand-plumbed per-task pipeline.

        The boolean verdict structure (deadlines, stability, violating
        sets, system rollup) must byte-match the scalar plumbing.  Since
        the batched pass adopted the scalar summation order (the shared
        analysis-memo contract), the slack *values* are bit-identical
        too -- checked exactly, not at the historical 1e-9 tolerance.
        """
        rng = np.random.default_rng(20170331)
        checked = 0
        violating_seen = 0
        for _ in range(N_TASKSETS):
            n = int(rng.integers(2, 10))
            taskset = _random_control_taskset(rng, n)
            report = analyze(taskset)
            legacy = _legacy_verdicts(taskset)
            facade = {
                "valid": report.stable,
                "violating": list(report.violating),
                "tasks": {
                    v.name: {
                        "deadline_met": v.deadline_met,
                        "stable": v.stable,
                        "ok": v.ok,
                    }
                    for v in report.verdicts
                },
            }
            legacy_bools = {
                "valid": legacy["valid"],
                "violating": legacy["violating"],
                "tasks": {
                    name: {k: entry[k] for k in ("deadline_met", "stable", "ok")}
                    for name, entry in legacy["tasks"].items()
                },
            }
            assert _canon(facade) == _canon(legacy_bools)
            for v in report.verdicts:
                legacy_slack = legacy["tasks"][v.name]["slack"]
                assert v.slack == legacy_slack
            checked += n
            violating_seen += len(report.violating)
        assert checked > 1000
        # The drawn population must exercise both verdict branches.
        assert violating_seen > 0

    def test_interfaces_byte_match_batched_glue(self):
        """analyze() interfaces == the PR-1 batched consumer path, exactly."""
        rng = np.random.default_rng(20170401)
        for _ in range(N_TASKSETS):
            taskset = _random_control_taskset(rng, int(rng.integers(2, 10)))
            report = analyze(taskset)
            batched = analyze_taskset(taskset)
            facade_times = {
                v.name: [v.times.best, v.times.worst] for v in report.verdicts
            }
            legacy_times = {
                name: [times.best, times.worst]
                for name, times in batched.times.items()
            }
            assert _canon(facade_times) == _canon(legacy_times)
            assert report.stable == batched.stable
            assert report.violating == batched.violating

    def test_task_verdict_byte_matches_scalar_interface(self):
        """task_verdict() carries exactly latency_jitter()'s numbers."""
        rng = np.random.default_rng(20170402)
        for _ in range(60):
            taskset = _random_control_taskset(rng, int(rng.integers(2, 8)))
            for task in taskset:
                hp = taskset.higher_priority(task)
                verdict = task_verdict(task, hp)
                times = latency_jitter(task, hp)
                assert verdict.times.best == times.best
                assert verdict.times.worst == times.worst


class TestMemoEquivalence:
    """The shared-memo acceptance bar: memoised == fresh, byte for byte.

    One process-lifetime :class:`~repro.memo.AnalysisMemo` (the serve
    daemon's shape) is shared across the whole population; every
    memoised report -- cold entries, warm replays, LRU-interned tasks
    from earlier sets -- must serialise to exactly the bytes of a
    memo-less ``analyze()``.
    """

    def test_memoised_analyze_bytes_match_fresh_across_population(self):
        rng = np.random.default_rng(20170403)
        memo = AnalysisMemo()
        population = [
            _random_control_taskset(rng, int(rng.integers(2, 10)))
            for _ in range(N_TASKSETS)
        ]
        for taskset in population:
            fresh = analyze(taskset).report_json()
            assert analyze(taskset, memo=memo).report_json() == fresh
        # Second sweep: every subproblem replays from the warm memo and
        # the bytes still cannot move.
        hits_before = memo.stats()["cache_hits"]
        for taskset in population:
            fresh = analyze(taskset).report_json()
            assert analyze(taskset, memo=memo).report_json() == fresh
        stats = memo.stats()
        assert stats["cache_hits"] - hits_before >= stats["memo_entries"]

    def test_memoised_assign_bytes_match_fresh_across_population(self):
        """``assign(validation_memo=...)`` over the population.

        The daemon's mode: the search runs cold (its ``cache_hits``
        counter is part of the canonical outcome), only the validation
        analysis rides the shared memo.  Outcome bytes must equal a
        fully cold ``assign()`` on every set.
        """
        rng = np.random.default_rng(20170404)
        memo = AnalysisMemo()
        for _ in range(N_TASKSETS):
            taskset = _random_control_taskset(rng, int(rng.integers(2, 8)))
            cold = assign(taskset, algorithm="audsley").outcome_json()
            warm = assign(
                taskset, algorithm="audsley", validation_memo=memo
            ).outcome_json()
            assert warm == cold
        assert memo.stats()["recomputations"] > 0


class TestBatchDeterminism:
    def test_reports_identical_across_job_counts(self):
        rng = np.random.default_rng(7)
        systems = [
            _random_control_taskset(rng, int(rng.integers(2, 7)))
            for _ in range(12)
        ]
        serial = analyze_batch(systems, jobs=1, chunk_size=4)
        pooled = analyze_batch(systems, jobs=2, chunk_size=4)
        assert [r.canonical_json() for r in serial] == [
            r.canonical_json() for r in pooled
        ]

    def test_batch_matches_single_analyze(self):
        rng = np.random.default_rng(11)
        systems = [_random_control_taskset(rng, 4) for _ in range(6)]
        batch = analyze_batch(systems, jobs=1)
        singles = [analyze(ts, name=f"system-{k}") for k, ts in enumerate(systems)]
        assert [r.canonical_json() for r in batch] == [
            r.canonical_json() for r in singles
        ]
