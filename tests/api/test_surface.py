"""API-surface snapshot check (runs in the fast CI lane, ~seconds).

``tests/api/api_surface.json`` is the committed public surface: the
curated ``__all__`` of :mod:`repro` and :mod:`repro.api` plus the report
``schema_version``.  An accidental export removal, rename, or schema
bump fails here with an actionable diff; *intentional* changes update
the snapshot in the same commit (regenerate with the command below).
"""

from __future__ import annotations

import json
import os

import repro
import repro.api

SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "api_surface.json")

REGENERATE = (
    "python -c \"import json, repro, repro.api; json.dump("
    "{'schema_version': repro.SCHEMA_VERSION, "
    "'repro_all': sorted(repro.__all__), "
    "'repro_api_all': sorted(repro.api.__all__), "
    "'version': repro.__version__}, "
    "open('tests/api/api_surface.json', 'w'), indent=2, sort_keys=True)\""
)


def _snapshot() -> dict:
    with open(SNAPSHOT_PATH) as handle:
        return json.load(handle)


def test_repro_all_matches_snapshot():
    assert sorted(repro.__all__) == _snapshot()["repro_all"], (
        "public surface of 'repro' changed; if intentional, regenerate "
        f"the snapshot: {REGENERATE}"
    )


def test_repro_api_all_matches_snapshot():
    assert sorted(repro.api.__all__) == _snapshot()["repro_api_all"], (
        "public surface of 'repro.api' changed; if intentional, "
        f"regenerate the snapshot: {REGENERATE}"
    )


def test_schema_version_matches_snapshot():
    assert repro.SCHEMA_VERSION == _snapshot()["schema_version"], (
        "report schema_version changed; bump the snapshot (and the "
        "golden report) deliberately in the same commit"
    )


def test_every_export_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
    for name in repro.api.__all__:
        assert getattr(repro.api, name, None) is not None, name
