"""Golden-file and round-trip tests of the report JSON schema.

The golden file pins the *bytes* of the versioned report schema for a
fixed system (including the non-finite sentinel encoding and a violating
task), so any unintentional schema drift -- a renamed field, a changed
float format, a reordered key -- fails here with a diff instead of
surfacing in a consumer.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.api import (
    SCHEMA_VERSION,
    AnalysisReport,
    ControlTaskSystem,
    analyze,
    batch_report_dict,
)
from repro.errors import ModelError
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_report.json")

#: Expected keys of one task entry in the report schema (v1).
TASK_KEYS = {
    "name",
    "period",
    "wcet",
    "bcet",
    "priority",
    "best",
    "worst",
    "latency",
    "jitter",
    "deadline_met",
    "bound",
    "slack",
    "rel_slack",
    "stable",
    "ok",
}

#: Expected top-level keys of the report schema (v1).
REPORT_KEYS = {
    "schema_version",
    "name",
    "priority_policy",
    "n_tasks",
    "utilization",
    "schedulable",
    "stable",
    "violating",
    "tasks",
    "canonical_sha256",
}


def _golden_system() -> ControlTaskSystem:
    return ControlTaskSystem(
        taskset=TaskSet(
            [
                Task(
                    "roll",
                    period=0.01,
                    wcet=0.002,
                    bcet=0.001,
                    priority=3,
                    stability=LinearStabilityBound(a=1.25, b=0.008),
                ),
                Task(
                    "pitch",
                    period=0.02,
                    wcet=0.005,
                    bcet=0.002,
                    priority=2,
                    stability=LinearStabilityBound(a=1.1, b=0.015),
                ),
                Task(
                    "telemetry", period=0.05, wcet=0.04, bcet=0.02, priority=1
                ),
            ]
        ),
        name="golden",
        priority_policy="as_given",
    )


class TestGoldenReport:
    def test_report_bytes_match_golden_file(self, tmp_path):
        report = analyze(_golden_system())
        out = tmp_path / "report.json"
        report.write(str(out))
        assert out.read_text() == open(GOLDEN_PATH).read()

    def test_golden_file_is_schema_valid(self):
        with open(GOLDEN_PATH) as handle:
            data = json.load(handle)
        assert data["schema_version"] == SCHEMA_VERSION
        assert set(data) == REPORT_KEYS
        assert data["n_tasks"] == len(data["tasks"])
        for task in data["tasks"]:
            assert set(task) == TASK_KEYS
        # The golden deliberately contains a deadline-missing task: its
        # worst response encodes as the RFC-8259-safe sentinel string.
        telemetry = data["tasks"][-1]
        assert telemetry["worst"] == "Infinity"
        assert telemetry["ok"] is False
        assert data["violating"] == ["telemetry"]

    def test_embedded_hash_matches_canonical_json(self):
        report = analyze(_golden_system())
        with open(GOLDEN_PATH) as handle:
            data = json.load(handle)
        assert data["canonical_sha256"] == report.canonical_sha256()


class TestRoundTrip:
    def test_from_dict_load_preserves_canonical_hash(self, tmp_path):
        report = analyze(_golden_system())
        path = tmp_path / "r.json"
        report.write(str(path))
        reloaded = AnalysisReport.load(str(path))
        assert reloaded.canonical_sha256() == report.canonical_sha256()
        assert reloaded.canonical_json() == report.canonical_json()
        telemetry = reloaded.task("telemetry")
        assert math.isinf(telemetry.times.worst)
        assert telemetry.bound is None

    def test_from_dict_rejects_wrong_schema_version(self):
        payload = analyze(_golden_system()).to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ModelError, match="schema_version"):
            AnalysisReport.from_dict(payload)

    def test_batch_envelope_shape(self):
        reports = [analyze(_golden_system())]
        envelope = batch_report_dict(reports)
        assert envelope["schema_version"] == SCHEMA_VERSION
        assert envelope["n_systems"] == 1
        assert envelope["reports"][0]["name"] == "golden"
        assert len(envelope["canonical_sha256"]) == 64
