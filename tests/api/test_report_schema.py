"""Golden-file and round-trip tests of the report JSON schema.

The golden file pins the *bytes* of the versioned report schema for a
fixed system (including the non-finite sentinel encoding and a violating
task), so any unintentional schema drift -- a renamed field, a changed
float format, a reordered key -- fails here with a diff instead of
surfacing in a consumer.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.api import (
    SCHEMA_VERSION,
    AnalysisReport,
    ControlTaskSystem,
    analyze,
    batch_report_dict,
)
from repro.errors import ModelError
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_report.json")

#: Expected keys of one task entry in the report schema (v1).
TASK_KEYS = {
    "name",
    "period",
    "wcet",
    "bcet",
    "priority",
    "best",
    "worst",
    "latency",
    "jitter",
    "deadline_met",
    "bound",
    "slack",
    "rel_slack",
    "stable",
    "ok",
}

#: Expected top-level keys of the report schema (v1).
REPORT_KEYS = {
    "schema_version",
    "name",
    "priority_policy",
    "n_tasks",
    "utilization",
    "schedulable",
    "stable",
    "violating",
    "tasks",
    "canonical_sha256",
}


def _golden_system() -> ControlTaskSystem:
    return ControlTaskSystem(
        taskset=TaskSet(
            [
                Task(
                    "roll",
                    period=0.01,
                    wcet=0.002,
                    bcet=0.001,
                    priority=3,
                    stability=LinearStabilityBound(a=1.25, b=0.008),
                ),
                Task(
                    "pitch",
                    period=0.02,
                    wcet=0.005,
                    bcet=0.002,
                    priority=2,
                    stability=LinearStabilityBound(a=1.1, b=0.015),
                ),
                Task(
                    "telemetry", period=0.05, wcet=0.04, bcet=0.02, priority=1
                ),
            ]
        ),
        name="golden",
        priority_policy="as_given",
    )


class TestGoldenReport:
    def test_report_bytes_match_golden_file(self, tmp_path):
        report = analyze(_golden_system())
        out = tmp_path / "report.json"
        report.write(str(out))
        assert out.read_text() == open(GOLDEN_PATH).read()

    def test_golden_file_is_schema_valid(self):
        with open(GOLDEN_PATH) as handle:
            data = json.load(handle)
        assert data["schema_version"] == SCHEMA_VERSION
        assert set(data) == REPORT_KEYS
        assert data["n_tasks"] == len(data["tasks"])
        for task in data["tasks"]:
            assert set(task) == TASK_KEYS
        # The golden deliberately contains a deadline-missing task: its
        # worst response encodes as the RFC-8259-safe sentinel string.
        telemetry = data["tasks"][-1]
        assert telemetry["worst"] == "Infinity"
        assert telemetry["ok"] is False
        assert data["violating"] == ["telemetry"]

    def test_embedded_hash_matches_canonical_json(self):
        report = analyze(_golden_system())
        with open(GOLDEN_PATH) as handle:
            data = json.load(handle)
        assert data["canonical_sha256"] == report.canonical_sha256()


class TestRoundTrip:
    def test_from_dict_load_preserves_canonical_hash(self, tmp_path):
        report = analyze(_golden_system())
        path = tmp_path / "r.json"
        report.write(str(path))
        reloaded = AnalysisReport.load(str(path))
        assert reloaded.canonical_sha256() == report.canonical_sha256()
        assert reloaded.canonical_json() == report.canonical_json()
        telemetry = reloaded.task("telemetry")
        assert math.isinf(telemetry.times.worst)
        assert telemetry.bound is None

    def test_from_dict_rejects_wrong_schema_version(self):
        payload = analyze(_golden_system()).to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ModelError, match="schema_version"):
            AnalysisReport.from_dict(payload)

    def test_batch_envelope_shape(self):
        reports = [analyze(_golden_system())]
        envelope = batch_report_dict(reports)
        assert envelope["schema_version"] == SCHEMA_VERSION
        assert envelope["n_systems"] == 1
        assert envelope["reports"][0]["name"] == "golden"
        assert len(envelope["canonical_sha256"]) == 64


class TestSentinelCollidingNames:
    """PR-5 regression: names spelled like non-finite sentinels survive.

    ``from_dict`` used to blanket-decode the whole dict, turning a task
    (or system) genuinely named ``"NaN"`` into ``float('nan')`` on any
    reload; decoding is now field-typed per the escape rule of
    :mod:`repro.sweep.result`.
    """

    def _system(self) -> ControlTaskSystem:
        return ControlTaskSystem(
            taskset=TaskSet(
                [
                    Task(
                        "NaN",
                        period=0.01,
                        wcet=0.002,
                        bcet=0.001,
                        priority=2,
                        stability=LinearStabilityBound(a=1.25, b=0.008),
                    ),
                    Task(
                        "Infinity", period=0.05, wcet=0.01, bcet=0.01, priority=1
                    ),
                ]
            ),
            name="-Infinity",
            priority_policy="as_given",
        )

    def test_report_write_load_round_trip(self, tmp_path):
        report = analyze(self._system())
        path = tmp_path / "r.json"
        report.write(str(path))
        reloaded = AnalysisReport.load(str(path))
        assert reloaded.name == "-Infinity"
        assert [v.name for v in reloaded.verdicts] == ["NaN", "Infinity"]
        assert reloaded.canonical_json() == report.canonical_json()
        assert reloaded.canonical_sha256() == report.canonical_sha256()

    def test_names_are_escaped_on_the_wire(self, tmp_path):
        report = analyze(self._system())
        path = tmp_path / "r.json"
        report.write(str(path))
        raw = json.load(open(path))
        assert raw["name"] == "~-Infinity"
        assert raw["tasks"][0]["name"] == "~NaN"

    def test_from_dict_on_raw_unencoded_dict(self):
        # The in-memory path (no JSON in between) must round trip too.
        report = analyze(self._system())
        rebuilt = AnalysisReport.from_dict(report.to_dict())
        assert [v.name for v in rebuilt.verdicts] == ["NaN", "Infinity"]
        assert rebuilt.canonical_json() == report.canonical_json()

    def test_analyze_batch_sweep_path_preserves_names(self, tmp_path):
        from repro.api import analyze_batch

        systems = [self._system()]
        # cache_dir forces the sweep-engine path (chunk-cache round trip).
        (batched,) = analyze_batch(systems, jobs=1, cache_dir=str(tmp_path))
        direct = analyze(self._system())
        assert [v.name for v in batched.verdicts] == ["NaN", "Infinity"]
        assert batched.canonical_json() == direct.canonical_json()

    def test_hashes_unchanged_for_ordinary_names(self):
        # The escape rule must not move canonical bytes of reports whose
        # strings never collide -- pinned against the golden fixture.
        report = analyze(_golden_system())
        assert "~" not in report.canonical_json()

    def _tilde_system(self) -> ControlTaskSystem:
        # A name that *already* starts with the escape marker: the case
        # that breaks if anything unescapes a dict it never escaped.
        return ControlTaskSystem(
            taskset=TaskSet(
                [
                    Task("~NaN", period=0.01, wcet=0.002, bcet=0.001, priority=2),
                    Task("plain", period=0.05, wcet=0.01, bcet=0.01, priority=1),
                ]
            ),
            name="tilde",
            priority_policy="as_given",
        )

    def test_tilde_names_byte_identical_across_batch_paths(self, tmp_path):
        from repro.api import analyze_batch

        direct = analyze(self._tilde_system())
        assert direct.verdicts[0].name == "~NaN"
        # Process-pool path (raw worker dicts, no JSON in between) ...
        (pooled,) = analyze_batch([self._tilde_system()], jobs=2)
        assert pooled.verdicts[0].name == "~NaN"
        assert pooled.canonical_json() == direct.canonical_json()
        # ... and the chunk-cache path (encode -> decode round trip).
        (cached,) = analyze_batch(
            [self._tilde_system()], jobs=1, cache_dir=str(tmp_path)
        )
        assert cached.verdicts[0].name == "~NaN"
        assert cached.canonical_json() == direct.canonical_json()

    def test_tilde_names_survive_write_load(self, tmp_path):
        report = analyze(self._tilde_system())
        path = tmp_path / "r.json"
        report.write(str(path))
        assert json.load(open(path))["tasks"][0]["name"] == "~~NaN"
        reloaded = AnalysisReport.load(str(path))
        assert reloaded.verdicts[0].name == "~NaN"
        assert reloaded.canonical_json() == report.canonical_json()

    def test_raw_dict_round_trip_is_verbatim(self):
        report = analyze(self._tilde_system())
        rebuilt = AnalysisReport.from_dict(report.to_dict())
        assert rebuilt.verdicts[0].name == "~NaN"
        assert rebuilt.canonical_json() == report.canonical_json()


class TestModelInputValidation:
    """Schema-boundary rejections added for the serve layer (PR 5)."""

    def test_non_list_tasks_is_model_error(self):
        with pytest.raises(ModelError, match="tasks"):
            ControlTaskSystem.from_dict({"name": "x", "tasks": 42})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    @pytest.mark.parametrize("field", ["period", "wcet", "bcet"])
    def test_non_finite_numerics_are_model_errors(self, field, bad):
        entry = {"name": "t", "period": 1.0, "wcet": 0.1}
        entry[field] = bad
        with pytest.raises(ModelError, match="finite"):
            ControlTaskSystem.from_dict({"name": "x", "tasks": [entry]})

    @pytest.mark.parametrize("coeff", ["a", "b"])
    def test_non_finite_stability_coefficients_are_model_errors(self, coeff):
        stability = {"a": 1.2, "b": 0.01}
        stability[coeff] = float("inf")
        with pytest.raises(ModelError, match="finite"):
            ControlTaskSystem.from_dict(
                {
                    "name": "x",
                    "tasks": [
                        {
                            "name": "t",
                            "period": 1.0,
                            "wcet": 0.1,
                            "stability": stability,
                        }
                    ],
                }
            )
