"""Behavioural tests of the façade's model and service layers."""

from __future__ import annotations

import pickle

import pytest

from repro.api import (
    PRIORITY_POLICIES,
    ControlTaskSystem,
    analyze,
    task_verdict,
    verdict_from_times,
)
from repro.errors import ModelError, ScheduleError
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.interface import ResponseTimes
from repro.rta.taskset import Task, TaskSet


def _taskset(priorities=True) -> TaskSet:
    return TaskSet(
        [
            Task(
                "a",
                period=0.01,
                wcet=0.002,
                bcet=0.001,
                priority=2 if priorities else None,
                stability=LinearStabilityBound(a=1.2, b=0.008),
            ),
            Task(
                "b",
                period=0.02,
                wcet=0.005,
                bcet=0.002,
                priority=1 if priorities else None,
                stability=LinearStabilityBound(a=1.1, b=0.015),
            ),
        ]
    )


class TestControlTaskSystem:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ModelError, match="unknown priority policy"):
            ControlTaskSystem(taskset=_taskset(), priority_policy="magic")

    def test_as_given_requires_assigned_priorities(self):
        system = ControlTaskSystem(taskset=_taskset(priorities=False))
        with pytest.raises(ModelError, match="unassigned"):
            system.resolved_taskset()

    def test_policy_assigns_priorities(self):
        system = ControlTaskSystem(
            taskset=_taskset(priorities=False),
            priority_policy="backtracking",
        )
        resolved = system.resolved_taskset()
        resolved.check_distinct_priorities()
        assert analyze(system).stable

    def test_infeasible_policy_raises_schedule_error(self):
        # Two tasks whose combined demand cannot both meet deadlines.
        tasks = TaskSet(
            [
                Task("x", period=1.0, wcet=0.9, bcet=0.9),
                Task("y", period=1.0, wcet=0.9, bcet=0.9),
            ]
        )
        system = ControlTaskSystem(
            taskset=tasks, priority_policy="backtracking"
        )
        with pytest.raises(ScheduleError, match="no priority assignment"):
            system.resolved_taskset()

    def test_resolution_and_report_are_memoised(self):
        system = ControlTaskSystem(taskset=_taskset())
        assert system.resolved_taskset() is system.resolved_taskset()
        assert analyze(system) is analyze(system)

    def test_pickle_drops_memo_caches(self):
        """Sweep fingerprints must not depend on prior analyze() calls."""
        system = ControlTaskSystem(taskset=_taskset())
        cold = pickle.dumps(system)
        analyze(system)  # populate the memo caches
        warm = pickle.dumps(system)
        assert cold == warm

    def test_dict_round_trip(self):
        system = ControlTaskSystem(taskset=_taskset(), name="rt")
        clone = ControlTaskSystem.from_dict(system.to_dict())
        assert clone.name == "rt"
        assert analyze(clone).canonical_json() == analyze(system).canonical_json()

    def test_from_dict_rejects_empty_tasks(self):
        with pytest.raises(ModelError, match="non-empty 'tasks'"):
            ControlTaskSystem.from_dict({"name": "x", "tasks": []})

    def test_plant_binding_derives_stability_bound(self):
        system = ControlTaskSystem(
            taskset=TaskSet(
                [
                    Task(
                        "servo",
                        period=0.006,
                        wcet=0.001,
                        bcet=0.0005,
                        priority=1,
                        plant_name="dc_servo",
                    )
                ]
            )
        )
        resolved = system.resolved_taskset()
        bound = resolved.by_name("servo").stability
        assert bound is not None
        assert bound.a >= 1.0 and bound.b > 0.0
        verdict = analyze(system).task("servo")
        assert verdict.bound is not None

    def test_policy_registry_covers_all_assigners(self):
        assert {
            "as_given",
            "rate_monotonic",
            "slack_monotonic",
            "audsley",
            "backtracking",
            "unsafe_quadratic",
            "exhaustive",
        } == set(PRIORITY_POLICIES)

    def test_policy_registry_matches_search_strategies(self):
        from repro.search import strategy_names

        assert set(PRIORITY_POLICIES) == {"as_given", *strategy_names()}


class TestVerdicts:
    def test_verdict_without_bound_has_no_slack(self):
        task = Task("plain", period=1.0, wcet=0.1, bcet=0.1, priority=1)
        verdict = task_verdict(task, ())
        assert verdict.slack is None
        assert verdict.rel_slack is None
        assert verdict.stable and verdict.ok

    def test_bounded_deadline_miss_has_neg_inf_slack(self):
        task = Task(
            "tight",
            period=1.0,
            wcet=0.5,
            bcet=0.5,
            priority=1,
            stability=LinearStabilityBound(a=1.0, b=0.9),
        )
        interferer = Task("hog", period=1.0, wcet=0.7, bcet=0.7, priority=2)
        verdict = task_verdict(task, (interferer,))
        assert not verdict.deadline_met
        assert verdict.slack == float("-inf")
        assert not verdict.ok

    def test_unprioritised_task_keeps_null_priority(self):
        from repro.api import TaskVerdict

        task = Task(
            "alone",
            period=0.1,
            wcet=0.01,
            bcet=0.01,
            stability=LinearStabilityBound(a=1.0, b=0.05),
        )
        verdict = verdict_from_times(task, ResponseTimes(best=0.02, worst=0.04))
        assert verdict.priority is None
        payload = verdict.to_dict()
        assert payload["priority"] is None
        assert TaskVerdict.from_dict(payload).priority is None

    def test_verdict_from_times_judges_external_interfaces(self):
        task = Task(
            "served",
            period=0.1,
            wcet=0.01,
            bcet=0.01,
            stability=LinearStabilityBound(a=1.0, b=0.05),
        )
        ok = verdict_from_times(task, ResponseTimes(best=0.02, worst=0.04))
        bad = verdict_from_times(task, ResponseTimes(best=0.02, worst=0.08))
        assert ok.ok and ok.slack == pytest.approx(0.01)
        assert not bad.stable and bad.slack == pytest.approx(-0.03)
