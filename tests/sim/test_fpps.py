"""Tests of the fixed-priority preemptive scheduler simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.rta.taskset import Task, TaskSet
from repro.sim.fpps import simulate_fpps
from repro.sim.workload import BestCaseExecution, WorstCaseExecution


class TestBasicScheduling:
    def test_single_task_runs_periodically(self):
        ts = TaskSet([Task(name="t", period=2.0, wcet=0.5, priority=1)])
        trace = simulate_fpps(ts, 10.0)
        jobs = trace.completed_jobs_of("t")
        assert len(jobs) == 5
        for k, job in enumerate(jobs):
            assert job.release == pytest.approx(2.0 * k)
            assert job.finish == pytest.approx(2.0 * k + 0.5)

    def test_preemption(self, three_task_set):
        trace = simulate_fpps(three_task_set, 16.0)
        # At t=0 all release; 'hi' runs first, 'me' second, 'lo' last.
        first_lo = trace.completed_jobs_of("lo")[0]
        assert first_lo.start >= 3.0 - 1e-9  # hi (1) + me (2) run first
        # lo is preempted by hi's release at t=4: finish after 4.
        assert first_lo.finish == pytest.approx(7.0)

    def test_synchronous_release_matches_critical_instant(self, three_task_set):
        trace = simulate_fpps(three_task_set, 32.0, execution_model=WorstCaseExecution())
        assert trace.completed_jobs_of("lo")[0].response_time == pytest.approx(7.0)

    def test_offsets_shift_releases(self):
        ts = TaskSet([Task(name="t", period=2.0, wcet=0.5, priority=1)])
        trace = simulate_fpps(ts, 6.0, offsets={"t": 1.0})
        releases = [j.release for j in trace.jobs_of("t")]
        assert releases == pytest.approx([1.0, 3.0, 5.0])

    def test_processor_never_oversubscribed(self, three_task_set):
        trace = simulate_fpps(three_task_set, 48.0)
        assert trace.busy_time() <= 48.0 + 1e-9

    def test_unfinished_jobs_reported(self):
        # Utilisation 1.0 with synchronous release: the low task never
        # completes within its window but the simulator keeps going.
        ts = TaskSet(
            [
                Task(name="hog", period=1.0, wcet=0.8, priority=2),
                Task(name="bg", period=5.0, wcet=1.5, priority=1),
            ]
        )
        trace = simulate_fpps(ts, 10.0)
        bg_jobs = trace.jobs_of("bg")
        # Releases at 0, 5, and the boundary release at exactly t = 10.
        assert len(bg_jobs) == 3
        assert len(trace.completed_jobs_of("bg")) == 1
        assert trace.deadline_misses("bg", 5.0) >= 2

    def test_rejects_undistinct_priorities(self):
        ts = TaskSet(
            [
                Task(name="a", period=1.0, wcet=0.1, priority=1),
                Task(name="b", period=1.0, wcet=0.1, priority=1),
            ]
        )
        with pytest.raises(ModelError):
            simulate_fpps(ts, 1.0)

    def test_rejects_nonpositive_duration(self, three_task_set):
        with pytest.raises(ModelError):
            simulate_fpps(three_task_set, 0.0)


class TestExecutionModels:
    def test_best_case_model_runs_faster(self, three_task_set):
        worst = simulate_fpps(three_task_set, 32.0, execution_model=WorstCaseExecution())
        best = simulate_fpps(three_task_set, 32.0, execution_model=BestCaseExecution())
        assert best.busy_time() < worst.busy_time()

    def test_deterministic_given_seed(self, three_task_set):
        from repro.sim.workload import UniformExecution

        t1 = simulate_fpps(three_task_set, 32.0, execution_model=UniformExecution(), seed=5)
        t2 = simulate_fpps(three_task_set, 32.0, execution_model=UniformExecution(), seed=5)
        assert [j.finish for j in t1.records] == [j.finish for j in t2.records]
