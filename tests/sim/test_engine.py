"""Tests of the deterministic event queue."""

from __future__ import annotations

from repro.sim.engine import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_ties_break_by_order_class_then_insertion(self):
        q = EventQueue()
        q.push(1.0, "late-class", order=1)
        q.push(1.0, "early-class", order=0)
        q.push(1.0, "early-class-2", order=0)
        assert q.pop()[1] == "early-class"
        assert q.pop()[1] == "early-class-2"
        assert q.pop()[1] == "late-class"

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_empty_queue_peek(self):
        assert EventQueue().peek_time() is None

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.push(1.0, "x")
        assert q and len(q) == 1
