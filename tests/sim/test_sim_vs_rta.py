"""Property-based cross-validation: the simulator against eqs. (3)-(4).

These are the load-bearing integration tests of the scheduling layer:

* under all-WCET execution with synchronous release, the first job of
  every task attains *exactly* the analytic worst-case response time
  (critical instant theorem);
* no simulated response time ever leaves the analytic ``[R^b, R^w]``
  envelope, under any execution-time model.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rta.bcrt import best_case_response_time
from repro.rta.taskset import Task, TaskSet
from repro.rta.wcrt import worst_case_response_time
from repro.sim.fpps import simulate_fpps
from repro.sim.workload import BestCaseExecution, UniformExecution, WorstCaseExecution


@st.composite
def schedulable_task_sets(draw):
    """Random task sets with harmonic-ish periods and moderate load."""
    n = draw(st.integers(2, 5))
    periods = draw(
        st.lists(
            st.sampled_from([2.0, 4.0, 5.0, 8.0, 10.0, 16.0, 20.0]),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    periods.sort()
    total_u = draw(st.floats(0.2, 0.8))
    weights = [draw(st.floats(0.1, 1.0)) for _ in range(n)]
    scale = total_u / sum(weights)
    tasks = []
    for i in range(n):
        wcet = max(weights[i] * scale * periods[i], 1e-3)
        bcet_frac = draw(st.floats(0.2, 1.0))
        tasks.append(
            Task(
                name=f"t{i}",
                period=periods[i],
                wcet=wcet,
                bcet=max(wcet * bcet_frac, 5e-4),
                priority=n - i,  # rate monotonic
            )
        )
    return TaskSet(tasks)


def _analysis(ts):
    out = {}
    for task in ts:
        hp = ts.higher_priority(task)
        out[task.name] = (
            best_case_response_time(task, hp),
            worst_case_response_time(task, hp, limit=float("inf")),
        )
    return out


@settings(max_examples=25)
@given(schedulable_task_sets())
def test_critical_instant_attains_wcrt(ts):
    bounds = _analysis(ts)
    horizon = min(2.0 * ts.hyperperiod(), 2000.0)
    trace = simulate_fpps(ts, horizon, execution_model=WorstCaseExecution())
    for task in ts:
        jobs = trace.completed_jobs_of(task.name)
        if not jobs:
            continue
        first = jobs[0]
        assert first.response_time == pytest.approx(bounds[task.name][1], abs=1e-9)


@settings(max_examples=25)
@given(schedulable_task_sets(), st.integers(0, 1000))
def test_simulated_responses_stay_in_analytic_envelope(ts, seed):
    bounds = _analysis(ts)
    horizon = min(2.0 * ts.hyperperiod(), 2000.0)
    trace = simulate_fpps(
        ts, horizon, execution_model=UniformExecution(), seed=seed
    )
    for task in ts:
        best, worst = bounds[task.name]
        for response in trace.response_times(task.name):
            assert best - 1e-9 <= response <= worst + 1e-9


@settings(max_examples=25)
@given(schedulable_task_sets())
def test_best_case_model_never_beats_bcrt(ts):
    bounds = _analysis(ts)
    horizon = min(2.0 * ts.hyperperiod(), 2000.0)
    trace = simulate_fpps(ts, horizon, execution_model=BestCaseExecution())
    for task in ts:
        jobs = trace.response_times(task.name)
        if jobs:
            assert min(jobs) >= bounds[task.name][0] - 1e-9
