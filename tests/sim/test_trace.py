"""Tests of trace statistics."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.sim.trace import JobRecord, Trace


def _record(task, idx, release, exec_time, start, finish):
    return JobRecord(
        task_name=task,
        job_index=idx,
        release=release,
        execution_time=exec_time,
        start=start,
        finish=finish,
    )


@pytest.fixture
def trace():
    return Trace(
        duration=10.0,
        records=[
            _record("a", 0, 0.0, 1.0, 0.0, 1.0),
            _record("a", 1, 4.0, 1.0, 4.0, 5.5),
            _record("a", 2, 8.0, 1.0, 8.5, None),  # unfinished
            _record("b", 0, 0.0, 2.0, 1.0, 3.0),
        ],
    )


class TestTrace:
    def test_response_times(self, trace):
        assert trace.response_times("a") == pytest.approx([1.0, 1.5])

    def test_observed_extremes(self, trace):
        assert trace.observed_best_response("a") == pytest.approx(1.0)
        assert trace.observed_worst_response("a") == pytest.approx(1.5)

    def test_observed_latency_jitter(self, trace):
        latency, jitter = trace.observed_latency_jitter("a")
        assert latency == pytest.approx(1.0)
        assert jitter == pytest.approx(0.5)

    def test_unfinished_jobs_excluded_from_statistics(self, trace):
        assert len(trace.completed_jobs_of("a")) == 2

    def test_deadline_misses_count_unfinished(self, trace):
        # deadline 1.2: job 1 (resp 1.5) and unfinished job 2 both miss.
        assert trace.deadline_misses("a", 1.2) == 2

    def test_no_jobs_raises(self, trace):
        with pytest.raises(ModelError):
            trace.observed_worst_response("zzz")

    def test_busy_time(self, trace):
        assert trace.busy_time() == pytest.approx(4.0)

    def test_summary(self, trace):
        summary = trace.summary()
        assert summary["a"]["count"] == 2
        assert summary["a"]["max"] == pytest.approx(1.5)
        assert summary["b"]["mean"] == pytest.approx(3.0)
