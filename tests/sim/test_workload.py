"""Tests of the execution-time models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.rta.taskset import Task
from repro.sim.workload import (
    BestCaseExecution,
    ConstantExecution,
    UniformExecution,
    WorstCaseExecution,
    per_task_execution,
)


@pytest.fixture
def task():
    return Task(name="t", period=10.0, wcet=3.0, bcet=1.0)


class TestBasicModels:
    def test_worst_case(self, task, rng):
        assert WorstCaseExecution().sample(task, 0, rng) == pytest.approx(3.0)

    def test_best_case(self, task, rng):
        assert BestCaseExecution().sample(task, 0, rng) == pytest.approx(1.0)

    def test_constant_within_bounds(self, task, rng):
        assert ConstantExecution(2.0).sample(task, 0, rng) == pytest.approx(2.0)

    def test_constant_outside_bounds_rejected(self, task, rng):
        with pytest.raises(ModelError):
            ConstantExecution(5.0).sample(task, 0, rng)

    def test_uniform_within_bounds(self, task, rng):
        samples = [UniformExecution().sample(task, k, rng) for k in range(200)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert np.std(samples) > 0.1  # genuinely random

    def test_uniform_degenerate_interval(self, rng):
        fixed = Task(name="f", period=1.0, wcet=0.5, bcet=0.5)
        assert UniformExecution().sample(fixed, 0, rng) == pytest.approx(0.5)


class TestPerTask:
    def test_routes_by_name(self, task, rng):
        other = Task(name="o", period=5.0, wcet=2.0, bcet=0.5)
        model = per_task_execution(
            {"t": BestCaseExecution()}, default=WorstCaseExecution()
        )
        assert model.sample(task, 0, rng) == pytest.approx(1.0)
        assert model.sample(other, 0, rng) == pytest.approx(2.0)

    def test_default_default_is_worst_case(self, task, rng):
        model = per_task_execution({})
        assert model.sample(task, 0, rng) == pytest.approx(3.0)
