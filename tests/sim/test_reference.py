"""Zero-jitter sanity bugcheck: cosim == pure discrete-time LQG loop.

An unloaded periodic control task with constant execution time has zero
response-time jitter, so the event-driven co-simulation must reproduce
the textbook sampled closed loop exactly (up to the numerical noise of
two matrix-exponential code paths).  This pins the cosim/analysis
correspondence at the trivial point; the Monte-Carlo scenario validation
relies on that correspondence at scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.sim.reference import discrete_closed_loop, zero_jitter_discrepancy


class TestZeroJitterBugcheck:
    def test_cosim_matches_discrete_loop_zero_delay_limit(self, dc_servo_plant, dc_servo_design):
        # Tiny execution time: essentially the delay-free textbook loop.
        gap = zero_jitter_discrepancy(
            dc_servo_plant.state_space(),
            dc_servo_design,
            1e-5,
            200,
            x0=[0.01, 0.0],
        )
        assert gap < 1e-9

    def test_cosim_matches_discrete_loop_large_constant_delay(self, dc_servo_plant, dc_servo_design):
        # Half a period of constant delay: the Gamma1 channel is active,
        # so this exercises the held-input split, not just Phi.
        h = dc_servo_design.problem.h
        gap = zero_jitter_discrepancy(
            dc_servo_plant.state_space(),
            dc_servo_design,
            0.5 * h,
            200,
            x0=[0.01, 0.0],
        )
        assert gap < 1e-9

    def test_reference_trajectory_regulates(self, dc_servo_plant, dc_servo_design):
        trajectory = discrete_closed_loop(
            dc_servo_plant.state_space(),
            dc_servo_design,
            1e-4,
            500,
            x0=[0.01, 0.0],
        )
        assert abs(trajectory.outputs[-1]) < abs(trajectory.outputs[0])
        assert np.all(np.isfinite(trajectory.state_norms))

    def test_execution_time_must_fit_in_period(self, dc_servo_plant, dc_servo_design):
        h = dc_servo_design.problem.h
        with pytest.raises(ModelError):
            discrete_closed_loop(
                dc_servo_plant.state_space(), dc_servo_design, h, 10
            )

    def test_discrete_plant_rejected(self, dc_servo_plant, dc_servo_design):
        from repro.lti.discretize import c2d_zoh

        with pytest.raises(ModelError):
            discrete_closed_loop(
                c2d_zoh(dc_servo_plant.state_space(), 0.006),
                dc_servo_design,
                1e-4,
                10,
            )
