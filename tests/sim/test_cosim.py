"""Tests of the plant-in-the-loop co-simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.lqg import design_lqg
from repro.control.plants import get_plant
from repro.errors import ModelError
from repro.rta.taskset import Task, TaskSet
from repro.sim.cosim import cosimulate_control_task
from repro.sim.workload import ConstantExecution, WorstCaseExecution


@pytest.fixture
def servo_setup(dc_servo_plant):
    h = 0.006
    q1, q12, q2 = dc_servo_plant.cost_weights()
    r1, r2 = dc_servo_plant.noise_model()
    design = design_lqg(dc_servo_plant.state_space(), h, 0.0, q1, q12, q2, r1, r2)
    return dc_servo_plant.state_space(), design, h


class TestCosimBasics:
    def test_undisturbed_loop_regulates_to_zero(self, servo_setup):
        plant, design, h = servo_setup
        ts = TaskSet([Task(name="ctl", period=h, wcet=1e-4, bcet=1e-4, priority=1)])
        result = cosimulate_control_task(
            ts, "ctl", plant, design, 3.0,
            execution_model=WorstCaseExecution(), x0=[0.01, 0.0],
        )
        assert not result.diverged
        assert abs(result.outputs[-1]) < abs(result.outputs[0])

    def test_sample_and_actuation_counts(self, servo_setup):
        plant, design, h = servo_setup
        ts = TaskSet([Task(name="ctl", period=h, wcet=1e-4, bcet=1e-4, priority=1)])
        result = cosimulate_control_task(
            ts, "ctl", plant, design, 60 * h, x0=[0.01, 0.0]
        )
        assert result.sample_times.size >= 59
        assert result.actuation_times.size >= 59
        # Actuation lags each sample by the execution time.
        lags = result.actuation_times[:5] - result.sample_times[:5]
        assert np.allclose(lags, 1e-4, atol=1e-9)

    def test_super_margin_delay_destabilises(self, dc_servo_plant):
        """A constant actuation delay beyond the analysed latency budget
        physically destabilises the loop: at h = 12 ms the servo's margin
        analysis allows ~6.6 ms of latency, and a hog task imposing a
        constant 8.5 ms response time blows the trajectory up."""
        h = 0.012
        q1, q12, q2 = dc_servo_plant.cost_weights()
        r1, r2 = dc_servo_plant.noise_model()
        design = design_lqg(
            dc_servo_plant.state_space(), h, 0.0, q1, q12, q2, r1, r2
        )
        ts = TaskSet(
            [
                Task(name="hog", period=h, wcet=0.008, bcet=0.008, priority=2),
                Task(name="ctl", period=h, wcet=5e-4, bcet=5e-4, priority=1),
            ]
        )
        result = cosimulate_control_task(
            ts, "ctl", dc_servo_plant.state_space(), design, 4.0,
            execution_model=WorstCaseExecution(), x0=[0.01, 0.0],
        )
        assert result.diverged

    def test_mismatched_period_rejected(self, servo_setup):
        plant, design, h = servo_setup
        ts = TaskSet([Task(name="ctl", period=2 * h, wcet=1e-4, priority=1)])
        with pytest.raises(ModelError):
            cosimulate_control_task(ts, "ctl", plant, design, 1.0)

    def test_discrete_plant_rejected(self, servo_setup):
        plant, design, h = servo_setup
        from repro.lti.discretize import c2d_zoh

        ts = TaskSet([Task(name="ctl", period=h, wcet=1e-4, priority=1)])
        with pytest.raises(ModelError):
            cosimulate_control_task(ts, "ctl", c2d_zoh(plant, h), design, 1.0)

    def test_bad_initial_state_rejected(self, servo_setup):
        plant, design, h = servo_setup
        ts = TaskSet([Task(name="ctl", period=h, wcet=1e-4, priority=1)])
        with pytest.raises(ModelError):
            cosimulate_control_task(ts, "ctl", plant, design, 1.0, x0=[1.0])
