"""Tests of the Monte-Carlo simulation-vs-analysis validation harness."""

from __future__ import annotations

import json

import pytest

from repro.scenarios import get_scenario, validate_instance, validate_scenario
from repro.scenarios.validate import CELLS, analytic_records, from_sweep, sweep_spec
from repro.sweep import run_sweep

pytestmark = pytest.mark.scenario


class TestValidateInstance:
    def test_smoke_instance_confirmed_stable(self):
        spec = get_scenario("smoke_single_loop")
        record = validate_instance(spec, spec.instance(0, seed=7), horizon_periods=40)
        assert record["cell"] == "stable_confirmed"
        assert record["ok"]
        assert record["analytic_stable"]
        assert record["sim_divergent"] is False
        assert record["envelope_ok"]

    def test_deep_violation_diverges_as_predicted(self):
        spec = get_scenario("deep_violation")
        record = validate_instance(spec, spec.instance(0, seed=7))
        assert record["cell"] == "divergence_predicted"
        assert not record["analytic_stable"]
        assert record["sim_divergent"] is True
        assert record["ok"]

    def test_paper_anomaly_sits_in_the_band(self):
        spec = get_scenario("paper_priority_raise")
        record = validate_instance(spec, spec.instance(0, seed=7), horizon_periods=60)
        # The raised fixture is analytically unstable by a hair's breadth:
        # inside the declared near-boundary band, reported not failed.
        assert not record["analytic_stable"]
        assert record["near_boundary"]
        assert record["ok"]

    def test_record_is_json_serialisable(self):
        from repro.sweep.result import encode_nonfinite

        spec = get_scenario("benchmark_baseline")
        record = validate_instance(spec, spec.instance(0, seed=7), horizon_periods=40)
        json.dumps(encode_nonfinite(record), allow_nan=False)


class TestHarness:
    def test_smoke_validation_end_to_end(self):
        validation = validate_scenario(
            "smoke_single_loop", instances=3, horizon_periods=40
        )
        assert validation.ok
        assert validation.cells == {"stable_confirmed": 3}
        assert validation.n_instances == 3

    def test_report_cells_cover_all_categories(self):
        validation = validate_scenario(
            "smoke_single_loop", instances=2, horizon_periods=40
        )
        report = validation.to_report()
        assert set(report["cells"]) == set(CELLS)
        assert report["scenario"] == "smoke_single_loop"
        assert report["canonical_sha256"]

    def test_report_json_is_canonical_and_parsable(self):
        validation = validate_scenario(
            "smoke_single_loop", instances=2, horizon_periods=40
        )
        parsed = json.loads(validation.report_json())
        assert parsed["ok"] is True

    def test_write_roundtrip(self, tmp_path):
        validation = validate_scenario(
            "smoke_single_loop", instances=2, horizon_periods=40
        )
        path = tmp_path / "report.json"
        validation.write(str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(
            json.dumps(json.loads(validation.report_json()))
        )

    def test_analytic_records_cheap_path(self):
        spec = get_scenario("paper_priority_raise")
        records = analytic_records(spec, instances=2, seed=7)
        assert len(records) == 2
        assert all(not r["analytic_stable"] for r in records)

    def test_unknown_scenario_fails_fast(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError, match="known scenarios"):
            sweep_spec(scenario="nope")


@pytest.mark.sweep
class TestDeterminismAcrossJobs:
    def test_report_byte_identical_jobs_1_vs_2(self):
        kwargs = dict(scenario="benchmark_baseline", instances=6, horizon_periods=50, chunk_size=2)
        serial = run_sweep(sweep_spec(**kwargs), jobs=1)
        parallel = run_sweep(sweep_spec(**kwargs), jobs=2)
        assert serial.canonical_json() == parallel.canonical_json()
        assert (
            from_sweep(serial).report_json() == from_sweep(parallel).report_json()
        )


@pytest.mark.slow
class TestRegistrySweep:
    """Full-lane acceptance: every registered scenario validates clean."""

    def test_whole_registry_validates(self):
        from repro.scenarios import scenario_names, validate_registry

        reports = validate_registry(instances=6, horizon_periods=60)
        assert set(reports) == set(scenario_names())
        for name, validation in reports.items():
            assert validation.ok, (
                f"{name} failed: {validation.failures}"
            )

    def test_deep_violation_and_smoke_disagree_cells(self):
        deep = validate_scenario("deep_violation", instances=2)
        smoke = validate_scenario("smoke_single_loop", instances=2, horizon_periods=40)
        assert deep.cells.get("divergence_predicted") == 2
        assert smoke.cells.get("stable_confirmed") == 2
