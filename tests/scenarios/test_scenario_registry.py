"""Tests of the named scenario catalogue."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.scenarios import (
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.registry import _REGISTRY

pytestmark = pytest.mark.scenario


class TestCatalogue:
    def test_at_least_eight_scenarios(self):
        assert len(scenario_names()) >= 8

    def test_names_sorted_and_unique(self):
        names = scenario_names()
        assert list(names) == sorted(set(names))

    def test_flagship_entries_present(self):
        names = scenario_names()
        assert "paper_priority_raise" in names
        assert "smoke_single_loop" in names
        assert "deep_violation" in names

    def test_every_scenario_has_description_and_axes(self):
        for spec in all_scenarios():
            assert spec.description
            assert spec.axes_summary()

    def test_stress_scenarios_carry_sim_only_perturbations(self):
        for spec in all_scenarios():
            if spec.expectation == "stress":
                assert any(p.sim_only for p in spec.perturbations), spec.name

    def test_sound_scenarios_carry_no_sim_only_perturbations(self):
        for spec in all_scenarios():
            if spec.expectation == "sound":
                assert not any(p.sim_only for p in spec.perturbations), spec.name

    def test_unknown_name_has_helpful_error(self):
        with pytest.raises(ModelError, match="known scenarios"):
            get_scenario("does_not_exist")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("smoke_single_loop")
        with pytest.raises(ModelError, match="already registered"):
            register(spec)

    def test_register_and_lookup_roundtrip(self):
        spec = ScenarioSpec(
            name="test_roundtrip_entry",
            description="test",
            source=get_scenario("smoke_single_loop").source,
        )
        try:
            register(spec)
            assert get_scenario("test_roundtrip_entry") is spec
        finally:
            _REGISTRY.pop("test_roundtrip_entry", None)


class TestCatalogueInstances:
    @pytest.mark.parametrize("name", ["paper_priority_raise", "smoke_single_loop", "deep_violation"])
    def test_fixed_scenarios_generate(self, name):
        spec = get_scenario(name)
        instance = spec.instance(0, seed=7)
        assert instance.assigned
        assert instance.analysis.by_name(instance.control) is not None

    def test_paper_scenario_is_the_pinned_anomaly_after_raise(self):
        from repro.anomalies.scenarios import priority_raise_anomaly_example

        fixture, victim = priority_raise_anomaly_example()
        instance = get_scenario("paper_priority_raise").instance(0, seed=7)
        # The raise swapped ctl above mid: priorities differ, parameters match.
        assert instance.control == victim
        assert instance.analysis.by_name("ctl").priority == 2
        assert instance.analysis.by_name("mid").priority == 1
        assert instance.analysis.by_name("ctl").wcet == fixture.by_name("ctl").wcet
