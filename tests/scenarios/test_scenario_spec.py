"""Tests of scenario specs, sources, and perturbation composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.rta.taskset import Task, TaskSet
from repro.scenarios import (
    BenchmarkSource,
    BurstyInterference,
    ClockDrift,
    DroppedJobs,
    FixedSource,
    PriorityShift,
    ScenarioSpec,
    TransientOverload,
    WcetInflation,
)
from repro.sim.trace import JobRecord, Trace

pytestmark = pytest.mark.scenario


def _fixed_pair():
    ts = TaskSet(
        [
            Task(name="hi", period=4.0, wcet=1.0, bcet=0.5, priority=3),
            Task(name="me", period=8.0, wcet=2.0, bcet=1.0, priority=2),
            Task(name="lo", period=16.0, wcet=3.0, bcet=2.0, priority=1),
        ]
    )
    return ts, "lo"


def _fixed_spec(**overrides):
    kwargs = dict(
        name="test_fixed",
        description="test",
        source=FixedSource(_fixed_pair),
        policy="as_given",
        execution="uniform",
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestSpecValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ModelError, match="policy"):
            _fixed_spec(policy="alphabetical")

    def test_unknown_execution_rejected(self):
        with pytest.raises(ModelError, match="execution"):
            _fixed_spec(execution="median")

    def test_bad_expectation_rejected(self):
        with pytest.raises(ModelError, match="expectation"):
            _fixed_spec(expectation="hopeful")

    def test_bad_band_rejected(self):
        with pytest.raises(ModelError, match="band"):
            _fixed_spec(band=1.5)


class TestInstanceGeneration:
    def test_fixed_source_returns_pinned_set(self):
        instance = _fixed_spec().instance(0, seed=7)
        assert instance.assigned
        assert instance.control == "lo"
        assert [t.name for t in instance.analysis] == ["hi", "me", "lo"]
        assert not instance.sim_only_gap

    def test_deterministic_per_index(self):
        spec = ScenarioSpec(
            name="test_bench",
            description="test",
            source=BenchmarkSource(),
            policy="rate_monotonic",
        )
        a = spec.instance(3, seed=11)
        b = spec.instance(3, seed=11)
        assert [
            (t.name, t.period, t.wcet, t.bcet, t.priority) for t in a.analysis
        ] == [(t.name, t.period, t.wcet, t.bcet, t.priority) for t in b.analysis]
        assert a.sim_seed == b.sim_seed

    def test_indices_vary_independently_of_order(self):
        spec = ScenarioSpec(
            name="test_bench2",
            description="test",
            source=BenchmarkSource(),
            policy="rate_monotonic",
        )
        late_first = spec.instance(5, seed=11)
        early = spec.instance(0, seed=11)
        late_again = spec.instance(5, seed=11)
        assert [t.wcet for t in late_first.analysis] == [
            t.wcet for t in late_again.analysis
        ]
        assert [t.wcet for t in early.analysis] != [
            t.wcet for t in late_first.analysis
        ]

    def test_benchmark_source_assigns_and_picks_lowest(self):
        spec = ScenarioSpec(
            name="test_bench3",
            description="test",
            source=BenchmarkSource(n_tasks=(3, 3)),
            policy="rate_monotonic",
        )
        instance = spec.instance(0, seed=7)
        assert instance.assigned
        assert len(instance.analysis) == 3
        lowest = min(instance.analysis, key=lambda t: t.priority)
        assert instance.control == lowest.name

    def test_as_given_requires_priorities(self):
        def unprioritised():
            return TaskSet([Task(name="a", period=1.0, wcet=0.1)]), "a"

        spec = _fixed_spec(source=FixedSource(unprioritised))
        with pytest.raises(ModelError, match="as_given"):
            spec.instance(0, seed=7)


class TestPerturbations:
    def test_priority_shift_raises_control(self):
        spec = _fixed_spec(perturbations=(PriorityShift(levels=1),))
        instance = spec.instance(0, seed=7)
        assert instance.analysis.by_name("lo").priority == 2
        assert instance.analysis.by_name("me").priority == 1

    def test_priority_shift_saturates_at_top(self):
        spec = _fixed_spec(perturbations=(PriorityShift(levels=10),))
        instance = spec.instance(0, seed=7)
        assert instance.analysis.by_name("lo").priority == 3

    def test_wcet_inflation_spares_control_and_clamps(self):
        spec = _fixed_spec(perturbations=(WcetInflation(factor=10.0),))
        instance = spec.instance(0, seed=7)
        assert instance.analysis.by_name("lo").wcet == 3.0
        assert instance.analysis.by_name("hi").wcet == 4.0  # clamped to period
        assert not instance.sim_only_gap

    def test_bursty_interference_adds_top_priority_task(self):
        spec = _fixed_spec(perturbations=(BurstyInterference(),))
        instance = spec.instance(0, seed=7)
        burst = instance.analysis.by_name("burst")
        assert burst.priority == 4
        assert burst.period == pytest.approx(0.25 * 16.0)
        assert not instance.sim_only_gap  # visible in both views

    def test_clock_drift_opens_sim_only_gap(self):
        spec = _fixed_spec(
            perturbations=(ClockDrift(factor=0.97),), expectation="stress"
        )
        instance = spec.instance(0, seed=7)
        assert instance.sim_only_gap
        assert instance.analysis.by_name("hi").period == 4.0
        assert instance.simulation.by_name("hi").period == pytest.approx(3.88)
        # control task untouched: controller and plant stay synchronised
        assert instance.simulation.by_name("lo").period == 16.0

    def test_transient_overload_exceeds_wcet_in_window(self):
        spec = _fixed_spec(
            perturbations=(TransientOverload(factor=2.0, n_jobs=3, max_start_job=1),),
            expectation="stress",
        )
        instance = spec.instance(0, seed=7)
        rng = np.random.default_rng(0)
        model = spec.execution_model(instance, rng)
        hi = instance.simulation.by_name("hi")
        assert model.sample(hi, 0, rng) == pytest.approx(2.0)
        assert model.sample(hi, 10, rng) <= hi.wcet + 1e-12

    def test_dropped_jobs_filters_control_records(self):
        perturbation = DroppedJobs(every=2)
        records = [
            JobRecord("lo", j, float(j), 1.0, float(j), float(j) + 1.0)
            for j in range(6)
        ] + [JobRecord("hi", 0, 0.0, 0.5, 0.0, 0.5)]
        trace = Trace(duration=10.0, records=records)
        filtered = perturbation.filter_trace(
            trace, "lo", np.random.default_rng(0)
        )
        assert len(filtered.jobs_of("lo")) == 3
        assert len(filtered.jobs_of("hi")) == 1

    def test_bad_perturbation_parameters_rejected(self):
        with pytest.raises(ModelError):
            WcetInflation(factor=0.9)
        with pytest.raises(ModelError):
            DroppedJobs(every=1)
        with pytest.raises(ModelError):
            ClockDrift(factor=1.0)
        with pytest.raises(ModelError):
            TransientOverload(factor=0.5)
