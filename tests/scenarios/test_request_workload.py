"""Tests of the scenario-drawn request streams feeding the serve layer."""

from __future__ import annotations

import threading

import pytest

from repro.api import analyze
from repro.errors import ModelError
from repro.scenarios import (
    drifting_request_stream,
    scenario_request_pool,
    scenario_request_stream,
)

pytestmark = pytest.mark.scenario


class TestPool:
    def test_pool_is_deterministic(self):
        a = scenario_request_pool(unique=8, seed=7)
        b = scenario_request_pool(unique=8, seed=7)
        assert [s.canonical_sha256() for s in a] == [
            s.canonical_sha256() for s in b
        ]

    def test_pool_members_are_distinct_and_analysable(self):
        pool = scenario_request_pool(unique=8, seed=7)
        shas = [s.canonical_sha256() for s in pool]
        assert len(set(shas)) == len(pool)
        report = analyze(pool[0])
        assert report.n_tasks >= 1

    def test_pool_mixes_scenarios(self):
        pool = scenario_request_pool(unique=8, seed=7)
        sources = {system.name.rsplit("-", 1)[0] for system in pool}
        assert len(sources) > 1

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ModelError, match="unknown scenario"):
            scenario_request_pool(unique=4, scenarios=["no_such_scenario"])

    def test_bad_sizes_rejected(self):
        with pytest.raises(ModelError, match="unique"):
            scenario_request_pool(unique=0)


class TestStream:
    def test_stream_is_deterministic(self):
        a = scenario_request_stream(30, unique=8, seed=7)
        b = scenario_request_stream(30, unique=8, seed=7)
        assert [s.canonical_sha256() for s in a] == [
            s.canonical_sha256() for s in b
        ]

    def test_repeats_bounded_by_unique_pool(self):
        stream = scenario_request_stream(
            50, unique=8, repeat_fraction=0.5, seed=7
        )
        shas = {s.canonical_sha256() for s in stream}
        assert len(stream) == 50
        assert 1 < len(shas) <= 8

    def test_zero_repeat_fraction_is_all_distinct(self):
        stream = scenario_request_stream(
            8, unique=8, repeat_fraction=0.0, seed=7
        )
        assert len({s.canonical_sha256() for s in stream}) == 8

    def test_full_repeat_fraction_reuses_the_first_model(self):
        stream = scenario_request_stream(
            10, unique=8, repeat_fraction=1.0, seed=7
        )
        # First request is necessarily fresh; everything after repeats.
        assert len({s.canonical_sha256() for s in stream}) == 1

    def test_validation(self):
        with pytest.raises(ModelError, match="requests"):
            scenario_request_stream(0)
        with pytest.raises(ModelError, match="repeat_fraction"):
            scenario_request_stream(5, repeat_fraction=1.5)

    def test_models_round_trip_through_the_schema(self):
        # The benchmark ships these over HTTP as JSON model dicts; the
        # dict form must rebuild into an identically-hashed system.
        from repro.api import ControlTaskSystem

        for system in scenario_request_stream(6, unique=6, seed=7):
            rebuilt = ControlTaskSystem.from_dict(system.to_dict())
            assert rebuilt.canonical_sha256() == system.canonical_sha256()


class TestDriftStream:
    def test_stream_is_deterministic(self):
        a = drifting_request_stream(10, n_tasks=4, seed=23)
        b = drifting_request_stream(10, n_tasks=4, seed=23)
        assert [s.canonical_sha256() for s in a] == [
            s.canonical_sha256() for s in b
        ]

    def test_all_requests_distinct_and_stable(self):
        stream = drifting_request_stream(8, n_tasks=4, seed=23)
        shas = {s.canonical_sha256() for s in stream}
        assert len(shas) == 8
        for system in stream:
            assert analyze(system).stable is True

    def test_min_rel_slack_decays_monotonically(self):
        stream = drifting_request_stream(8, n_tasks=4, seed=23)
        slacks = [
            min(t["rel_slack"] for t in analyze(s).to_dict()["tasks"])
            for s in stream
        ]
        assert slacks[0] > slacks[-1]
        assert all(a >= b - 1e-12 for a, b in zip(slacks, slacks[1:]))

    def test_validation(self):
        with pytest.raises(ModelError, match="requests"):
            drifting_request_stream(1)
        with pytest.raises(ModelError, match="inflation"):
            drifting_request_stream(4, inflation=1.0)
        with pytest.raises(ModelError, match="final_margin"):
            drifting_request_stream(4, final_margin=0.9)


class TestConcurrentConsumption:
    """Stream determinism when many threads draw and analyse at once.

    The serving benchmarks fan one stream out over worker threads; the
    guarantee they rely on is that concurrent generation (same seed)
    and concurrent analysis of a shared stream never perturb the
    models or the per-seed draw order.
    """

    def _collect(self, build, n_threads=6):
        results = [None] * n_threads
        errors = []

        def work(slot):
            try:
                results[slot] = build()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(slot,))
            for slot in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        return results

    def test_concurrent_generation_is_seed_deterministic(self):
        def build():
            return [
                s.canonical_sha256()
                for s in scenario_request_stream(12, unique=4, seed=7)
            ]

        results = self._collect(build)
        assert all(r == results[0] for r in results)

    def test_concurrent_drift_generation_is_seed_deterministic(self):
        def build():
            return [
                s.canonical_sha256()
                for s in drifting_request_stream(6, n_tasks=4, seed=23)
            ]

        results = self._collect(build)
        assert all(r == results[0] for r in results)

    def test_shared_stream_survives_concurrent_analysis(self):
        stream = scenario_request_stream(8, unique=4, seed=7)
        before = [s.canonical_sha256() for s in stream]

        def consume():
            return [analyze(s).report_json() for s in stream]

        results = self._collect(consume, n_threads=4)
        # Every consumer saw byte-identical reports...
        assert all(r == results[0] for r in results)
        # ...and analysis did not mutate the shared models.
        assert [s.canonical_sha256() for s in stream] == before


class TestUndrawablePool:
    def test_unassignable_scenarios_error_instead_of_spinning(self):
        from repro.jittermargin.linearbound import LinearStabilityBound
        from repro.rta.taskset import Task, TaskSet
        from repro.scenarios import ScenarioSpec, register
        from repro.scenarios.registry import _REGISTRY
        from repro.scenarios.spec import FixedSource

        # A fixture no policy can schedule: utilisation > 1.
        infeasible = TaskSet(
            [
                Task("a", period=1.0, wcet=0.9, bcet=0.9,
                     stability=LinearStabilityBound(a=1.0, b=0.5)),
                Task("b", period=1.0, wcet=0.9, bcet=0.9),
            ]
        )
        name = "_test_undrawable_pool"
        register(
            ScenarioSpec(
                name=name,
                description="test-only: never assignable",
                source=FixedSource(factory=lambda: (infeasible, "a")),
                policy="backtracking",
            )
        )
        try:
            with pytest.raises(ModelError, match="attempts"):
                scenario_request_pool(unique=2, scenarios=[name])
        finally:
            del _REGISTRY[name]
