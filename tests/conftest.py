"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One shared profile: generous deadlines (numeric code under CI jitter),
# no flaky health checks from module-scoped fixtures.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=50,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def dc_servo_plant():
    from repro.control.plants import get_plant

    return get_plant("dc_servo")


@pytest.fixture
def dc_servo_design(dc_servo_plant):
    """LQG design for the DC servo at the paper's Fig. 4 operating point."""
    from repro.control.lqg import design_lqg

    q1, q12, q2 = dc_servo_plant.cost_weights()
    r1, r2 = dc_servo_plant.noise_model()
    return design_lqg(
        dc_servo_plant.state_space(), 0.006, 0.0, q1, q12, q2, r1, r2
    )


@pytest.fixture
def three_task_set():
    """A small, exactly analysable task set with distinct priorities."""
    from repro.rta.taskset import Task, TaskSet

    return TaskSet(
        [
            Task(name="hi", period=4.0, wcet=1.0, bcet=0.5, priority=3),
            Task(name="me", period=8.0, wcet=2.0, bcet=1.0, priority=2),
            Task(name="lo", period=16.0, wcet=3.0, bcet=2.0, priority=1),
        ]
    )
