"""Crash containment outside the daemon: kill workers mid-run.

Satellite contract: a worker death mid-sweep and mid-scenario-validation
must leave the run complete, with ``failover_items > 0`` and a canonical
sha identical to the serial run.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.exec import PoolBackend
from repro.sweep import SweepSpec, run_sweep
from repro.sweep._testing import pool_crashing_worker

pytestmark = pytest.mark.sweep


class TestSweepFailover:
    def _spec(self):
        # Two marked items in different chunks: at least one pool worker
        # dies mid-sweep; the in-process rerun (in_worker() is False)
        # computes the same records deterministically.
        return SweepSpec(
            name="crashy",
            worker=pool_crashing_worker,
            items=tuple(
                {"index": i, "boom": i in (2, 7)} for i in range(10)
            ),
            seed=3,
            chunk_size=2,
        )

    def test_worker_death_mid_sweep_completes_with_failover(self):
        serial = run_sweep(self._spec(), jobs=1)
        backend = PoolBackend(2, memo_entries=0)
        try:
            survived = run_sweep(self._spec(), backend=backend)
        finally:
            backend.close()
        assert survived.canonical_sha256() == serial.canonical_sha256()
        assert backend.failover_items > 0
        assert backend.worker_crashes >= 1
        assert backend.pools_rebuilt >= 1

    def test_backend_usable_after_crash(self):
        backend = PoolBackend(2, memo_entries=0)
        try:
            run_sweep(self._spec(), backend=backend)
            crashes = backend.worker_crashes
            clean = SweepSpec(
                name="clean",
                worker=pool_crashing_worker,
                items=tuple({"index": i} for i in range(6)),
                seed=3,
                chunk_size=2,
            )
            serial = run_sweep(clean, jobs=1)
            after = run_sweep(clean, backend=backend)
            assert after.canonical_sha256() == serial.canonical_sha256()
            # The rebuilt pool computed the clean sweep without failover.
            assert backend.worker_crashes == crashes
        finally:
            backend.close()


class TestScenarioValidationFailover:
    @pytest.mark.scenario
    def test_sigkill_mid_validation_sha_unchanged(self):
        from repro.scenarios.validate import sweep_spec

        spec = sweep_spec(
            scenario="smoke_single_loop", instances=6, horizon_periods=30,
            chunk_size=1,
        )
        serial = run_sweep(spec, jobs=1)
        backend = PoolBackend(2, memo_entries=0)
        try:
            # Kill a live worker, then dispatch: futures already queued
            # to the broken pool fail over to in-process computation.
            os.kill(backend.worker_pids()[0], signal.SIGKILL)
            survived = run_sweep(spec, backend=backend)
        finally:
            backend.close()
        assert survived.canonical_sha256() == serial.canonical_sha256()
        assert backend.failover_items > 0
        assert backend.worker_crashes >= 1
