"""Lint: all process/thread-pool machinery lives in ``repro.exec``.

The tentpole invariant of the execution plane is architectural: no
caller outside ``src/repro/exec/`` constructs a process pool (or
imports the modules that would let it).  A source scan enforces it --
cheaper than a custom flake8 plugin, and it fails with the offending
file and line.

Allowlist: ``cluster/shard.py`` supervises full daemon *processes*
(fork/exec + signals), which is process management, not a compute pool.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Module prefixes whose import is banned outside the execution plane.
_BANNED_IMPORT = re.compile(
    r"^\s*(?:import\s+(?:multiprocessing|concurrent)\b"
    r"|from\s+(?:multiprocessing|concurrent)(?:\.|\s))"
)

#: Direct pool construction (catches re-exported names too).
_BANNED_CALL = re.compile(r"\bProcessPoolExecutor\s*\(")

#: Paths (relative to ``src/repro``) exempt from the ban.
_ALLOWED = ("exec/", "cluster/shard.py")


def _violations(pattern: re.Pattern) -> list:
    found = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel.startswith(_ALLOWED[0]) or rel in _ALLOWED[1:]:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if pattern.search(line):
                found.append(f"{rel}:{lineno}: {line.strip()}")
    return found


class TestExecutionPlaneOwnsConcurrency:
    def test_no_multiprocessing_imports_outside_exec(self):
        assert _violations(_BANNED_IMPORT) == []

    def test_no_direct_process_pool_construction(self):
        assert _violations(_BANNED_CALL) == []

    def test_the_scan_sees_the_real_tree(self):
        # Guard against the lint silently passing on a wrong path.
        assert (SRC / "exec" / "backends.py").exists()
        assert len(list(SRC.rglob("*.py"))) > 50
