"""Fast-lane smoke: sweep + serve request through ``PoolBackend`` at
``--jobs 2``, byte-identical with serial (run as its own CI step).
"""

from __future__ import annotations

import pytest

from repro.api.service import analyze
from repro.exec import PoolBackend
from repro.scenarios.workload import scenario_request_pool
from repro.sweep import SweepSpec, run_sweep
from repro.sweep._testing import seeded_draw_worker

pytestmark = pytest.mark.sweep


def test_sweep_through_pool_matches_serial():
    spec = SweepSpec(
        name="smoke",
        worker=seeded_draw_worker,
        items=tuple({"index": i} for i in range(8)),
        seed=5,
        chunk_size=2,
    )
    serial = run_sweep(spec, jobs=1)
    backend = PoolBackend(2, memo_entries=4096)
    try:
        pooled = run_sweep(spec, backend=backend)
    finally:
        backend.close()
    assert pooled.canonical_json() == serial.canonical_json()


def test_serve_request_through_pool_matches_direct_facade():
    systems = scenario_request_pool(unique=3, seed=9)
    direct = [analyze(system).report_json() for system in systems]
    backend = PoolBackend(2, memo_entries=4096)
    try:
        served = backend.compute(("analyze",), systems)
    finally:
        backend.close()
    assert [body for ok, body, _ in served] == direct
    assert all(ok for ok, _, _ in served)


def test_deprecated_cluster_import_path_still_serves():
    with pytest.warns(DeprecationWarning, match="repro.exec.PoolBackend"):
        from repro.cluster import ProcessPoolBackend

        backend = ProcessPoolBackend(2, memo_entries=1024)
    systems = scenario_request_pool(unique=2, seed=9)
    try:
        served = backend.compute(("analyze",), systems)
    finally:
        backend.close()
    assert [body for ok, body, _ in served] == [
        analyze(system).report_json() for system in systems
    ]
