"""Backend dispatch: ordering, byte-identity, warm worker memos, errors.

The acceptance-critical check lives in ``TestWarmWorkerMemo``: a warm
rerun through :class:`~repro.exec.backends.PoolBackend` must show
nonzero worker-memo hit counts, surfaced both on the backend's own
counters and the process-wide ``repro_exec_*`` instruments.
"""

from __future__ import annotations

import pytest

from repro.exec import (
    ExecutionPlan,
    PoolBackend,
    SerialBackend,
    TaskFailed,
    backend_for_jobs,
)
from repro.sweep import SweepSpec, run_sweep
from repro.sweep._testing import failing_worker, seeded_draw_worker

pytestmark = pytest.mark.sweep


def _draw_spec(n=12, chunk_size=3):
    return SweepSpec(
        name="exec-draws",
        worker=seeded_draw_worker,
        items=tuple({"index": i} for i in range(n)),
        seed=11,
        chunk_size=chunk_size,
    )


class TestOrderingAndIdentity:
    def test_results_in_call_order_across_backends(self):
        from repro.sweep.executor import _execute_chunk

        plan = ExecutionPlan(
            name="order",
            fn=_execute_chunk,
            calls=tuple(
                (seeded_draw_worker, i, [(i, {"index": i})], {}, 3, None)
                for i in range(7)
            ),
        )
        serial = SerialBackend(memo_entries=0).run(plan)
        pool = PoolBackend(2, memo_entries=0)
        try:
            pooled = pool.run(plan)
        finally:
            pool.close()
        assert [records for _, records in serial] == [
            records for _, records in pooled
        ]

    def test_sweep_canonical_bytes_identical_across_backends(self):
        serial = run_sweep(_draw_spec(), jobs=1)
        pool_one = PoolBackend(1, memo_entries=4096)
        pool_two = PoolBackend(2, memo_entries=4096)
        try:
            via_one = run_sweep(_draw_spec(), backend=pool_one)
            via_two = run_sweep(_draw_spec(), backend=pool_two)
        finally:
            pool_one.close()
            pool_two.close()
        assert serial.canonical_json() == via_one.canonical_json()
        assert serial.canonical_json() == via_two.canonical_json()
        assert via_two.meta["backend"] == "pool"

    def test_task_error_raises_task_failed_with_cause(self):
        plan = ExecutionPlan(
            name="boom",
            fn=failing_worker,
            calls=((({"explode": True}), {}, 0),),
        )
        backend = PoolBackend(2, memo_entries=0)
        try:
            with pytest.raises(TaskFailed) as excinfo:
                backend.run(plan)
        finally:
            backend.close()
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert excinfo.value.index == 0

    def test_serial_task_error_matches(self):
        plan = ExecutionPlan(
            name="boom",
            fn=failing_worker,
            calls=((({"explode": True}), {}, 0),),
        )
        with pytest.raises(TaskFailed) as excinfo:
            SerialBackend(memo_entries=0).run(plan)
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestBackendSelection:
    def test_jobs_one_is_shared_serial_backend(self):
        assert backend_for_jobs(1) is backend_for_jobs(1)
        assert backend_for_jobs(1).kind == "serial"

    def test_pool_backends_cached_by_worker_count(self):
        first = backend_for_jobs(2)
        assert first.kind == "pool"
        assert backend_for_jobs(2) is first
        assert backend_for_jobs(2, memo_entries=128) is not first

    def test_stats_surface_is_uniform(self):
        expected = {
            "kind",
            "workers",
            "alive_workers",
            "memo_entries",
            "batches",
            "items",
            "memo_hits",
            "memo_recomputations",
            "worker_crashes",
            "failover_items",
            "pools_rebuilt",
        }
        assert set(backend_for_jobs(1).stats()) == expected
        assert set(backend_for_jobs(2).stats()) == expected


class TestWarmWorkerMemo:
    def test_pool_rerun_counts_memo_hits(self):
        """Acceptance: warm sweep rerun shows nonzero worker-memo hits,
        counter-verified on the ``repro_exec_*`` instruments."""
        from repro.obs.metrics import default_registry
        from repro.scenarios.workload import scenario_request_pool

        hits_counter = default_registry().counter(
            "repro_exec_memo_hits_total",
            "Worker-lifetime memo hits, attributed to the dispatching plan",
            labels=("plan", "backend"),
        )

        def metric_hits():
            return hits_counter.value(
                plan="sweep-api-analyze", backend="pool"
            )

        systems = scenario_request_pool(unique=5, seed=23)
        backend = PoolBackend(2, memo_entries=8192)
        before = metric_hits()
        try:
            # analyze_batch at jobs>1 rides run_sweep; pin the backend so
            # this test does not depend on the shared-default pool state.
            from repro.api.service import (
                _analyze_chunk_worker,
                _analyze_worker,
                as_system,
            )

            normalised = tuple(
                as_system(system, name=f"system-{k}")
                for k, system in enumerate(systems)
            )
            # Each chunk repeats one system: whichever worker takes the
            # chunk registers memo hits, independent of how the scheduler
            # splits chunks between the two workers (which is why plain
            # unique-per-chunk items would make this test flaky).
            spec = SweepSpec(
                name="api-analyze",
                worker=_analyze_worker,
                items=tuple(
                    {"k": k} for k in range(len(normalised)) for _ in (0, 1)
                ),
                params={"systems": normalised},
                chunk_size=2,
                chunk_worker=_analyze_chunk_worker,
            )
            cold = run_sweep(spec, backend=backend)
            hits_after_cold = backend.memo_hits
            warm = run_sweep(spec, backend=backend)
        finally:
            backend.close()
        # Same canonical bytes warm and cold -- the memo contract.
        assert cold.canonical_json() == warm.canonical_json()
        assert hits_after_cold > 0
        # The warm rerun answered further subproblems from worker memos.
        assert backend.memo_hits > hits_after_cold
        assert metric_hits() > before
        assert backend.stats()["memo_hits"] == backend.memo_hits

    def test_serial_backend_memo_warms_across_batches(self):
        from repro.api.service import analyze_batch
        from repro.scenarios.workload import scenario_request_pool

        backend = backend_for_jobs(1)
        before = backend.memo_hits + backend.memo_recomputations
        systems = scenario_request_pool(unique=4, seed=31)
        first = [r.report_json() for r in analyze_batch(systems)]
        # Fresh but content-identical systems: every subproblem is warm.
        again = [
            r.report_json()
            for r in analyze_batch(scenario_request_pool(unique=4, seed=31))
        ]
        assert first == again
        assert backend.memo_hits + backend.memo_recomputations > before
        assert backend.memo_hits > 0
