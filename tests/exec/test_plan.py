"""ExecutionPlan construction and validation."""

from __future__ import annotations

import pytest

from repro.exec import ExecError, ExecutionPlan
from repro.sweep._testing import square_worker


class TestPlanValidation:
    def test_lambda_rejected(self):
        with pytest.raises(ExecError, match="module-level"):
            ExecutionPlan(name="p", fn=lambda: None, calls=((),))

    def test_nested_function_rejected(self):
        def local_fn():
            return None

        with pytest.raises(ExecError, match="module-level"):
            ExecutionPlan(name="p", fn=local_fn, calls=((),))

    def test_empty_name_rejected(self):
        with pytest.raises(ExecError, match="name"):
            ExecutionPlan(name="", fn=square_worker, calls=())

    def test_weight_count_must_match_calls(self):
        with pytest.raises(ExecError, match="weights"):
            ExecutionPlan(
                name="p",
                fn=square_worker,
                calls=(({"value": 1}, {}, 0),),
                weights=(1, 2),
            )

    def test_counts(self):
        plan = ExecutionPlan(
            name="p",
            fn=square_worker,
            calls=tuple(({"value": v}, {}, 0) for v in range(3)),
            weights=(4, 5, 6),
        )
        assert plan.n_calls == 3
        assert plan.n_items == 15
        assert plan.weight(1) == 5

    def test_default_weights_are_one_per_call(self):
        plan = ExecutionPlan(
            name="p",
            fn=square_worker,
            calls=tuple(({"value": v}, {}, 0) for v in range(3)),
        )
        assert plan.n_items == 3
        assert plan.weight(2) == 1

    def test_env_normalised_to_sorted_tuple(self):
        plan = ExecutionPlan(
            name="p",
            fn=square_worker,
            calls=((({"value": 1}), {}, 0),),
            env={"B": "2", "A": "1"},
        )
        assert plan.env == (("A", "1"), ("B", "2"))
