"""``--jobs`` semantics, defined (and tested) in exactly one module.

Moved from the sweep executor tests when ``resolve_jobs`` was hoisted to
:mod:`repro.exec`; :mod:`repro.sweep` re-exports it, which is asserted
here so both import paths stay interchangeable.
"""

from __future__ import annotations

import os

import pytest

from repro.exec import ExecError, resolve_jobs


class TestJobsResolution:
    def test_positive_integers_pass_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_auto_and_zero_resolve_to_cpu_count(self):
        expected = os.cpu_count() or 1
        assert resolve_jobs(0) == expected
        assert resolve_jobs(None) == expected
        assert resolve_jobs("auto") == expected
        assert resolve_jobs("AUTO") == expected

    def test_numeric_strings_accepted(self):
        assert resolve_jobs("3") == 3
        assert resolve_jobs("0") == os.cpu_count() or 1

    def test_garbage_rejected(self):
        with pytest.raises(ExecError, match="jobs"):
            resolve_jobs("many")
        with pytest.raises(ExecError, match="jobs"):
            resolve_jobs(-2)

    def test_run_sweep_accepts_zero_as_auto(self):
        from repro.sweep import SweepSpec, run_sweep
        from repro.sweep._testing import seeded_draw_worker

        spec = SweepSpec(
            name="draws",
            worker=seeded_draw_worker,
            items=tuple({"index": i} for i in range(6)),
            seed=7,
            chunk_size=2,
        )
        result = run_sweep(spec, jobs=0)
        assert result.meta["jobs"] == (os.cpu_count() or 1)


class TestJobsFloatRejection:
    """PR-5 regression: non-integral job counts must error, not truncate."""

    @pytest.mark.parametrize(
        "jobs", [1.5, 2.7, 0.5, -1.5, float("nan"), float("inf")]
    )
    def test_non_integral_floats_rejected(self, jobs):
        with pytest.raises(ExecError, match="jobs"):
            resolve_jobs(jobs)

    def test_integral_floats_accepted(self):
        # A float that *is* a whole number is unambiguous; accept it.
        assert resolve_jobs(2.0) == 2
        assert resolve_jobs(0.0) == (os.cpu_count() or 1)

    def test_fractional_string_rejected(self):
        with pytest.raises(ExecError, match="jobs"):
            resolve_jobs("1.5")


class TestSingleDefinition:
    def test_sweep_reexports_the_exec_function(self):
        from repro import sweep

        assert sweep.resolve_jobs is resolve_jobs

    def test_sweep_error_is_an_exec_error(self):
        from repro.sweep import SweepError

        assert issubclass(SweepError, ExecError)
