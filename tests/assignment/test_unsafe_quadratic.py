"""Tests of the Unsafe Quadratic baseline."""

from __future__ import annotations

import pytest

from repro.assignment.unsafe_quadratic import assign_unsafe_quadratic
from repro.assignment.validate import validate_assignment


class TestUnsafeQuadratic:
    def test_solves_easy_instance(self, easy_taskset):
        result = assign_unsafe_quadratic(easy_taskset)
        assert result.claims_valid
        assert validate_assignment(result.apply_to(easy_taskset)).valid

    def test_always_commits_to_a_complete_order(self, infeasible_taskset):
        # The defining behaviour: even on infeasible instances it outputs
        # a full (invalid) assignment -- unlike Audsley or backtracking.
        result = assign_unsafe_quadratic(infeasible_taskset)
        assert result.priorities is not None
        assert sorted(result.priorities.values()) == [1, 2]
        assert not result.claims_valid
        assert not validate_assignment(
            result.apply_to(infeasible_taskset)
        ).valid

    def test_exactly_quadratic_evaluations(self, easy_taskset):
        result = assign_unsafe_quadratic(easy_taskset)
        n = len(easy_taskset)
        assert result.evaluations == n * (n + 1) // 2

    def test_never_backtracks(self, easy_taskset):
        assert assign_unsafe_quadratic(easy_taskset).backtracks == 0

    def test_respects_forced_order(self, rm_only_taskset):
        result = assign_unsafe_quadratic(rm_only_taskset)
        assert result.priorities["fast"] > result.priorities["slow"]
        assert validate_assignment(result.apply_to(rm_only_taskset)).valid

    def test_does_not_mutate_input(self, easy_taskset):
        assign_unsafe_quadratic(easy_taskset)
        assert all(t.priority is None for t in easy_taskset)

    def test_agreement_with_backtracking_when_monotone(self, benchmark_taskset):
        """On anomaly-free instances both algorithms succeed (they may pick
        different orders; validity is what matters)."""
        from repro.assignment.backtracking import assign_backtracking

        uq = assign_unsafe_quadratic(benchmark_taskset)
        bt = assign_backtracking(benchmark_taskset)
        if bt.succeeded and bt.backtracks == 0:
            assert validate_assignment(uq.apply_to(benchmark_taskset)).valid
