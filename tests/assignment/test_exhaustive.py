"""Tests of the brute-force ground-truth assigner."""

from __future__ import annotations

import pytest

from repro.assignment.exhaustive import assign_exhaustive, count_valid_orders
from repro.assignment.validate import validate_assignment
from repro.errors import ModelError
from repro.rta.taskset import Task, TaskSet


class TestExhaustive:
    def test_finds_valid_order(self, easy_taskset):
        result = assign_exhaustive(easy_taskset)
        assert result.succeeded
        assert validate_assignment(result.apply_to(easy_taskset)).valid

    def test_detects_infeasibility(self, infeasible_taskset):
        result = assign_exhaustive(infeasible_taskset)
        assert result.priorities is None

    def test_refuses_large_sets(self):
        tasks = [
            Task(name=f"t{i}", period=float(10 + i), wcet=0.1) for i in range(10)
        ]
        with pytest.raises(ModelError):
            assign_exhaustive(TaskSet(tasks))

    def test_count_valid_orders_easy_set_all_valid(self, easy_taskset):
        # Generous bounds: every permutation schedulable & stable.
        assert count_valid_orders(easy_taskset) == 6

    def test_count_valid_orders_forced(self, rm_only_taskset):
        assert count_valid_orders(rm_only_taskset) == 1

    def test_count_valid_orders_infeasible(self, infeasible_taskset):
        assert count_valid_orders(infeasible_taskset) == 0
