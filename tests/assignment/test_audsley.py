"""Tests of the classic Audsley OPA reference implementation."""

from __future__ import annotations

from repro.assignment.audsley import assign_audsley
from repro.assignment.validate import validate_assignment


class TestAudsley:
    def test_solves_easy_instance(self, easy_taskset):
        result = assign_audsley(easy_taskset)
        assert result.succeeded
        assert validate_assignment(result.apply_to(easy_taskset)).valid

    def test_fails_cleanly_on_infeasible(self, infeasible_taskset):
        result = assign_audsley(infeasible_taskset)
        assert result.priorities is None
        assert not result.claims_valid

    def test_never_emits_invalid_assignments(self, benchmark_taskset):
        # Sound by construction: success implies validity.
        result = assign_audsley(benchmark_taskset)
        if result.priorities is not None:
            assert validate_assignment(result.apply_to(benchmark_taskset)).valid

    def test_quadratic_evaluations_on_success(self, easy_taskset):
        result = assign_audsley(easy_taskset)
        n = len(easy_taskset)
        assert result.evaluations == n * (n + 1) // 2

    def test_finds_forced_order(self, rm_only_taskset):
        result = assign_audsley(rm_only_taskset)
        assert result.succeeded
        assert result.priorities["fast"] > result.priorities["slow"]
