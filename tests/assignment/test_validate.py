"""Tests of assignment validation."""

from __future__ import annotations

import pytest

from repro.assignment.validate import validate_assignment
from repro.errors import ModelError
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet


class TestValidateAssignment:
    def test_valid_assignment(self, easy_taskset):
        ts = easy_taskset.with_priorities({"a": 3, "b": 2, "c": 1})
        report = validate_assignment(ts)
        assert report.valid
        assert report.violating_tasks == ()

    def test_detects_stability_violation(self, rm_only_taskset):
        # Inverted order: 'fast' at the bottom misses its deadline.
        ts = rm_only_taskset.with_priorities({"fast": 1, "slow": 2})
        report = validate_assignment(ts)
        assert not report.valid
        assert "fast" in report.violating_tasks

    def test_per_task_detail(self, rm_only_taskset):
        ts = rm_only_taskset.with_priorities({"fast": 2, "slow": 1})
        report = validate_assignment(ts)
        assert report.verdicts["fast"].deadline_met
        assert report.verdicts["fast"].stable
        assert report.verdicts["slow"].times.latency == pytest.approx(2.8)

    def test_requires_complete_priorities(self, easy_taskset):
        with pytest.raises(ModelError):
            validate_assignment(easy_taskset)

    def test_task_without_bound_passes_on_deadline_alone(self):
        ts = TaskSet(
            [
                Task(name="plain", period=5.0, wcet=1.0, priority=2),
                Task(
                    name="ctl",
                    period=10.0,
                    wcet=1.0,
                    priority=1,
                    stability=LinearStabilityBound(a=1.0, b=100.0),
                ),
            ]
        )
        assert validate_assignment(ts).valid
