"""Tests of Algorithm 1 (backtracking priority assignment)."""

from __future__ import annotations

import pytest

from repro.assignment.backtracking import assign_backtracking
from repro.assignment.validate import validate_assignment


class TestBacktracking:
    def test_solves_easy_instance(self, easy_taskset):
        result = assign_backtracking(easy_taskset)
        assert result.succeeded
        assert validate_assignment(result.apply_to(easy_taskset)).valid

    def test_priorities_are_a_permutation(self, easy_taskset):
        result = assign_backtracking(easy_taskset)
        assert sorted(result.priorities.values()) == [1, 2, 3]

    def test_finds_the_unique_order(self, rm_only_taskset):
        result = assign_backtracking(rm_only_taskset)
        assert result.succeeded
        assert result.priorities["fast"] > result.priorities["slow"]

    def test_reports_infeasible(self, infeasible_taskset):
        result = assign_backtracking(infeasible_taskset)
        assert result.priorities is None
        assert not result.succeeded
        # Both tasks fail at the lowest level: two evaluations, no commit.
        assert result.evaluations == 2

    def test_no_backtracking_on_easy_instances(self, easy_taskset):
        result = assign_backtracking(easy_taskset)
        assert result.backtracks == 0
        # n + (n-1) + ... + 1 evaluations when the first choice always works.
        n = len(easy_taskset)
        assert result.evaluations == n * (n + 1) // 2

    def test_solves_generated_benchmark(self, benchmark_taskset):
        result = assign_backtracking(benchmark_taskset)
        if result.priorities is not None:
            assert validate_assignment(
                result.apply_to(benchmark_taskset)
            ).valid

    def test_does_not_mutate_input(self, easy_taskset):
        assign_backtracking(easy_taskset)
        assert all(t.priority is None for t in easy_taskset)

    def test_evaluation_budget_respected(self, infeasible_taskset):
        result = assign_backtracking(infeasible_taskset, max_evaluations=1)
        assert result.priorities is None
        assert result.evaluations <= 3  # one level's worth at most

    @pytest.mark.slow
    def test_agrees_with_exhaustive_on_feasibility(self):
        """Backtracking is complete: it finds a solution iff one exists."""
        import numpy as np

        from repro.assignment.exhaustive import assign_exhaustive
        from repro.benchgen.taskgen import BenchmarkConfig, generate_control_taskset

        config = BenchmarkConfig(utilization_range=(0.5, 0.9))
        for index in range(30):
            rng = np.random.default_rng([7331, 4, index])
            taskset = generate_control_taskset(4, rng, config=config)
            ours = assign_backtracking(taskset)
            truth = assign_exhaustive(taskset)
            assert (ours.priorities is None) == (truth.priorities is None)
            if ours.priorities is not None:
                assert validate_assignment(ours.apply_to(taskset)).valid
