"""Property-based tests over the whole assignment layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment.audsley import assign_audsley
from repro.assignment.backtracking import assign_backtracking
from repro.assignment.exhaustive import assign_exhaustive
from repro.assignment.unsafe_quadratic import assign_unsafe_quadratic
from repro.assignment.validate import validate_assignment
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet


@st.composite
def constrained_task_sets(draw):
    n = draw(st.integers(2, 5))
    periods = draw(
        st.lists(
            st.sampled_from([2.0, 4.0, 5.0, 8.0, 10.0, 16.0]),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    total_u = draw(st.floats(0.3, 0.85))
    weights = [draw(st.floats(0.1, 1.0)) for _ in range(n)]
    scale = total_u / sum(weights)
    tasks = []
    for i, period in enumerate(sorted(periods)):
        wcet = max(weights[i] * scale * period, 1e-3)
        bcet = max(wcet * draw(st.floats(0.2, 1.0)), 5e-4)
        bound_b = period * draw(st.floats(0.3, 1.2))
        bound_a = draw(st.floats(1.0, 3.0))
        tasks.append(
            Task(
                name=f"t{i}",
                period=period,
                wcet=wcet,
                bcet=bcet,
                stability=LinearStabilityBound(a=bound_a, b=bound_b),
            )
        )
    return TaskSet(tasks)


@settings(max_examples=30)
@given(constrained_task_sets())
def test_backtracking_success_implies_validity(ts):
    result = assign_backtracking(ts)
    if result.priorities is not None:
        assert validate_assignment(result.apply_to(ts)).valid


@settings(max_examples=30)
@given(constrained_task_sets())
def test_backtracking_matches_exhaustive_feasibility(ts):
    ours = assign_backtracking(ts)
    truth = assign_exhaustive(ts)
    assert (ours.priorities is None) == (truth.priorities is None)


@settings(max_examples=30)
@given(constrained_task_sets())
def test_audsley_success_implies_validity(ts):
    result = assign_audsley(ts)
    if result.priorities is not None:
        assert validate_assignment(result.apply_to(ts)).valid


@settings(max_examples=30)
@given(constrained_task_sets())
def test_audsley_never_beats_backtracking(ts):
    # OPA without backtracking is incomplete: anything it solves,
    # Algorithm 1 also solves (the converse can fail under anomalies).
    audsley = assign_audsley(ts)
    if audsley.priorities is not None:
        assert assign_backtracking(ts).priorities is not None


@settings(max_examples=30)
@given(constrained_task_sets())
def test_unsafe_quadratic_always_commits(ts):
    result = assign_unsafe_quadratic(ts)
    assert result.priorities is not None
    assert sorted(result.priorities.values()) == list(range(1, len(ts) + 1))


@settings(max_examples=30)
@given(constrained_task_sets())
def test_unsafe_quadratic_belief_is_sound_positively(ts):
    # When UQ believes its output is valid, it is: every commit passed an
    # exact check with the exact final hp-set.
    result = assign_unsafe_quadratic(ts)
    if result.claims_valid:
        assert validate_assignment(result.apply_to(ts)).valid
