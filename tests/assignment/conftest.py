"""Fixtures for the priority-assignment tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchgen.taskgen import BenchmarkConfig, generate_control_taskset
from repro.jittermargin.linearbound import LinearStabilityBound
from repro.rta.taskset import Task, TaskSet


@pytest.fixture
def easy_taskset():
    """Generously bounded set: any priority order is valid."""
    return TaskSet(
        [
            Task(name="a", period=4.0, wcet=0.4, bcet=0.2,
                 stability=LinearStabilityBound(a=1.0, b=100.0)),
            Task(name="b", period=8.0, wcet=0.8, bcet=0.4,
                 stability=LinearStabilityBound(a=1.0, b=100.0)),
            Task(name="c", period=16.0, wcet=1.6, bcet=0.8,
                 stability=LinearStabilityBound(a=1.0, b=100.0)),
        ]
    )


@pytest.fixture
def rm_only_taskset():
    """Feasible only with rate-monotonic-like orders: tight bounds force
    the short-period task to the top."""
    return TaskSet(
        [
            Task(name="fast", period=2.0, wcet=0.8, bcet=0.8,
                 stability=LinearStabilityBound(a=1.0, b=1.0)),
            Task(name="slow", period=10.0, wcet=2.0, bcet=2.0,
                 stability=LinearStabilityBound(a=1.0, b=7.0)),
        ]
    )


@pytest.fixture
def infeasible_taskset():
    """No priority order satisfies both stability bounds."""
    return TaskSet(
        [
            Task(name="x", period=4.0, wcet=2.0, bcet=2.0,
                 stability=LinearStabilityBound(a=1.0, b=2.5)),
            Task(name="y", period=4.0, wcet=2.0, bcet=2.0,
                 stability=LinearStabilityBound(a=1.0, b=2.5)),
        ]
    )


@pytest.fixture
def benchmark_taskset():
    """A realistic generated benchmark (deterministic seed)."""
    rng = np.random.default_rng([99, 6, 0])
    return generate_control_taskset(6, rng, config=BenchmarkConfig())
