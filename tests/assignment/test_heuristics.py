"""Tests of the single-pass ordering heuristics."""

from __future__ import annotations

from repro.assignment.heuristics import (
    assign_rate_monotonic,
    assign_slack_monotonic,
)
from repro.assignment.validate import validate_assignment


class TestRateMonotonic:
    def test_shorter_period_gets_higher_priority(self, easy_taskset):
        result = assign_rate_monotonic(easy_taskset)
        pri = result.priorities
        assert pri["a"] > pri["b"] > pri["c"]

    def test_claims_nothing(self, easy_taskset):
        result = assign_rate_monotonic(easy_taskset)
        assert result.claims_valid is None
        assert result.evaluations == 0

    def test_valid_on_generous_bounds(self, easy_taskset):
        result = assign_rate_monotonic(easy_taskset)
        assert validate_assignment(result.apply_to(easy_taskset)).valid


class TestSlackMonotonic:
    def test_linear_number_of_evaluations(self, easy_taskset):
        result = assign_slack_monotonic(easy_taskset)
        assert result.evaluations == len(easy_taskset)

    def test_produces_complete_permutation(self, benchmark_taskset):
        result = assign_slack_monotonic(benchmark_taskset)
        assert sorted(result.priorities.values()) == list(
            range(1, len(benchmark_taskset) + 1)
        )

    def test_most_slack_gets_lowest_priority(self, rm_only_taskset):
        result = assign_slack_monotonic(rm_only_taskset)
        # 'slow' tolerates interference (b = 7), 'fast' does not (b = 1).
        assert result.priorities["fast"] > result.priorities["slow"]
