"""Setuptools shim.

Kept so that ``pip install -e .`` works in offline environments where the
``wheel`` package (required by PEP 660 editable installs) is unavailable;
all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
